"""Static CDFG verification: structural invariants as diagnostics.

Every consumer of a CDFG — the analysis stage, both mappers, the
interpreter/compiler pair, the packed cost tables — assumes well-formed
IR: one terminator per block, resolvable branch targets, operands that
match their opcode's shape, no reads of undefined temps or locals.
Until now those assumptions were only checked dynamically, when a
differential suite happened to execute the broken block.  This module
checks them *statically* and reports violations as structured
:class:`Diagnostic` records (function, label, program-wide bb_id, op
index), so a malformed CDFG is rejected at construction time with an
actionable message instead of failing somewhere inside a mapper.

The checks, in dependency order:

1. **Structure** — entry block exists, labels are consistent, every
   block ends in exactly one terminator and contains no control ops
   mid-block, every successor label resolves, a RET exists.
2. **Operand shapes** — per-opcode arity/target/dest requirements (the
   table below mirrors :mod:`repro.ir.opsemantics` and the lowering
   contract documented on :class:`repro.ir.operations.Instruction`),
   operand kinds (ArrayBase only as a LOAD/STORE base), and variable
   resolution against the CFG's variable table.
3. **Dataflow** — temps are defined before use (and at most once) inside
   their block; every local scalar read is definitely assigned along all
   paths from the entry (:class:`repro.ir.dataflow.DefiniteAssignment`);
   loop headers found by :class:`repro.ir.loops.LoopForest` dominate
   their loop bodies; per-block DFGs are acyclic.

Dataflow checks only run for functions whose structure verified clean —
dominators over a CFG with dangling edges are meaningless.

The module-level *sanitizer switch* gates the verification wired into
hot paths (CDFG construction, the pass pipeline, the block compiler):
:func:`set_sanitizer` / env var ``REPRO_IR_SANITIZE=0`` turn it off for
workloads where construction cost matters more than early rejection.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # circular at runtime: cdfg builds verify lazily
    from .cdfg import CDFG

from .basicblock import BasicBlock
from .cfg import ControlFlowGraph
from .dataflow import DefiniteAssignment, upward_exposed_temp_uses
from .dominators import DominatorTree
from .loops import LoopForest
from .operations import ArrayBase, Const, Instruction, Opcode, Temp, VarRef

# ----------------------------------------------------------------------
# Diagnostics
# ----------------------------------------------------------------------
ERROR = "error"
WARNING = "warning"


@dataclass(frozen=True)
class Diagnostic:
    """One verification finding, pinned to a block (and op) location."""

    code: str
    message: str
    function: str = ""
    label: str = ""
    bb_id: int = -1
    op_index: int | None = None
    severity: str = ERROR

    def __str__(self) -> str:
        where = f"{self.function}/{self.label}" if self.label else self.function
        if self.bb_id >= 0:
            where += f" (BB {self.bb_id})"
        if self.op_index is not None:
            where += f" op {self.op_index}"
        prefix = f"{self.severity}[{self.code}]"
        return f"{prefix} {where}: {self.message}" if where else (
            f"{prefix}: {self.message}"
        )


class VerificationError(ValueError):
    """Raised when a CDFG fails verification; carries the diagnostics."""

    def __init__(
        self, diagnostics: list[Diagnostic], context: str = ""
    ) -> None:
        self.diagnostics = list(diagnostics)
        shown = "\n".join(f"  {d}" for d in self.diagnostics[:8])
        extra = len(self.diagnostics) - 8
        if extra > 0:
            shown += f"\n  ... and {extra} more"
        prefix = f"{context}: " if context else ""
        super().__init__(
            f"{prefix}CDFG verification failed with "
            f"{len(self.diagnostics)} error(s):\n{shown}"
        )


@dataclass
class VerificationReport:
    """All diagnostics from one verification run."""

    diagnostics: list[Diagnostic] = field(default_factory=list)

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == WARNING]

    @property
    def ok(self) -> bool:
        return not self.errors

    def raise_if_errors(self, context: str = "") -> None:
        if not self.ok:
            raise VerificationError(self.errors, context)

    def render(self) -> str:
        if not self.diagnostics:
            return "verification clean"
        return "\n".join(str(d) for d in self.diagnostics)


# ----------------------------------------------------------------------
# Opcode shapes (arity table)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class OpcodeShape:
    """Structural contract of one opcode family."""

    min_operands: int
    max_operands: int
    targets: int = 0
    #: True = dest required, False = dest forbidden, None = optional.
    needs_dest: bool | None = True


_UNARY_VALUE_OPS = (
    Opcode.NEG,
    Opcode.BNOT,
    Opcode.LNOT,
    Opcode.ABS,
    Opcode.SQRT,
    Opcode.SIN,
    Opcode.COS,
    Opcode.FLOOR,
    Opcode.ROUND,
    Opcode.I2F,
    Opcode.F2I,
    Opcode.COPY,
    Opcode.CONST,
)
_BINARY_VALUE_OPS = (
    Opcode.ADD,
    Opcode.SUB,
    Opcode.MUL,
    Opcode.DIV,
    Opcode.MOD,
    Opcode.SHL,
    Opcode.SHR,
    Opcode.AND,
    Opcode.OR,
    Opcode.XOR,
    Opcode.LT,
    Opcode.GT,
    Opcode.LE,
    Opcode.GE,
    Opcode.EQ,
    Opcode.NE,
    Opcode.MIN,
    Opcode.MAX,
)

OPCODE_SHAPES: dict[Opcode, OpcodeShape] = {
    **{op: OpcodeShape(1, 1) for op in _UNARY_VALUE_OPS},
    **{op: OpcodeShape(2, 2) for op in _BINARY_VALUE_OPS},
    Opcode.SELECT: OpcodeShape(3, 3),
    Opcode.LOAD: OpcodeShape(2, 2),
    Opcode.STORE: OpcodeShape(3, 3, needs_dest=False),
    Opcode.BR: OpcodeShape(0, 0, targets=1, needs_dest=False),
    Opcode.CBR: OpcodeShape(1, 1, targets=2, needs_dest=False),
    Opcode.RET: OpcodeShape(0, 1, needs_dest=False),
    Opcode.CALL: OpcodeShape(0, 64, needs_dest=None),
}


def _safe_reachable(cfg: ControlFlowGraph) -> set[str]:
    """Labels reachable from the entry, tolerating dangling successors.

    ``cfg.reachable_labels()`` assumes every successor resolves — which
    is exactly what may not hold for the IR being diagnosed here.
    """
    reachable: set[str] = set()
    stack = [cfg.entry_label]
    while stack:
        label = stack.pop()
        if label is None or label in reachable or label not in cfg.blocks:
            continue
        reachable.add(label)
        stack.extend(cfg.blocks[label].successor_labels())
    return reachable


class _Checker:
    """Accumulates diagnostics for one CFG."""

    def __init__(
        self, cfg: ControlFlowGraph, cdfg: CDFG | None = None
    ) -> None:
        self.cfg = cfg
        self.cdfg = cdfg
        self.function = cfg.function_name
        self.diagnostics: list[Diagnostic] = []

    def report(
        self,
        code: str,
        message: str,
        block: BasicBlock | None = None,
        op_index: int | None = None,
        severity: str = ERROR,
    ) -> None:
        self.diagnostics.append(
            Diagnostic(
                code=code,
                message=message,
                function=self.function,
                label=block.label if block is not None else "",
                bb_id=block.bb_id if block is not None else -1,
                op_index=op_index,
                severity=severity,
            )
        )

    # ------------------------------------------------------------------
    # 1. Structure
    # ------------------------------------------------------------------
    def check_structure(self) -> None:
        cfg = self.cfg
        if cfg.entry_label is None or cfg.entry_label not in cfg.blocks:
            self.report(
                "missing-entry",
                f"entry label {cfg.entry_label!r} does not name a block",
            )
            return
        has_return = False
        for key, block in cfg.blocks.items():
            if key != block.label:
                self.report(
                    "label-mismatch",
                    f"block keyed {key!r} is labelled {block.label!r}",
                    block,
                )
            if not block.instructions:
                self.report("empty-block", "block has no instructions", block)
                continue
            for index, instruction in enumerate(block.instructions[:-1]):
                if instruction.opcode.is_control:
                    self.report(
                        "double-terminator",
                        f"control op {instruction.opcode.mnemonic} before "
                        "the end of the block",
                        block,
                        index,
                    )
            last = block.instructions[-1]
            if not last.opcode.is_control:
                self.report(
                    "missing-terminator",
                    f"block falls through after "
                    f"{last.opcode.mnemonic}",
                    block,
                    len(block.instructions) - 1,
                )
                continue
            if last.opcode is Opcode.RET:
                has_return = True
            for target in last.targets:
                if target not in cfg.blocks:
                    self.report(
                        "dangling-successor",
                        f"terminator targets unknown block {target!r}",
                        block,
                        len(block.instructions) - 1,
                    )
        if not has_return:
            self.report("missing-return", "function has no RET block")
        reachable = _safe_reachable(cfg)
        for label in cfg.blocks:
            if label not in reachable:
                self.report(
                    "unreachable-block",
                    "block is unreachable from the entry",
                    cfg.blocks[label],
                    severity=WARNING,
                )

    # ------------------------------------------------------------------
    # 2. Operand shapes
    # ------------------------------------------------------------------
    def check_shapes(self) -> None:
        for block in self.cfg.blocks.values():
            for index, instruction in enumerate(block.instructions):
                self._check_instruction(block, index, instruction)

    def _check_instruction(
        self, block: BasicBlock, index: int, instruction: Instruction
    ) -> None:
        shape = OPCODE_SHAPES.get(instruction.opcode)
        if shape is None:
            self.report(
                "unknown-opcode",
                f"no shape for opcode {instruction.opcode!r}",
                block,
                index,
            )
            return
        count = len(instruction.operands)
        if not shape.min_operands <= count <= shape.max_operands:
            expected = (
                str(shape.min_operands)
                if shape.min_operands == shape.max_operands
                else f"{shape.min_operands}..{shape.max_operands}"
            )
            self.report(
                "bad-arity",
                f"{instruction.opcode.mnemonic} has {count} operand(s), "
                f"expected {expected}",
                block,
                index,
            )
        if len(instruction.targets) != shape.targets:
            self.report(
                "bad-target-count",
                f"{instruction.opcode.mnemonic} has "
                f"{len(instruction.targets)} target(s), expected "
                f"{shape.targets}",
                block,
                index,
            )
        if shape.needs_dest is True and not isinstance(
            instruction.dest, (Temp, VarRef)
        ):
            self.report(
                "missing-dest",
                f"{instruction.opcode.mnemonic} must write a Temp/VarRef",
                block,
                index,
            )
        if shape.needs_dest is False and instruction.dest is not None:
            self.report(
                "unexpected-dest",
                f"{instruction.opcode.mnemonic} cannot have a dest",
                block,
                index,
            )
        memory_op = instruction.opcode in (Opcode.LOAD, Opcode.STORE)
        is_call = instruction.opcode is Opcode.CALL
        for position, operand in enumerate(instruction.operands):
            if isinstance(operand, ArrayBase):
                if is_call:
                    # Whole arrays are passed to callees by reference.
                    self._check_array_base(block, index, operand)
                elif not (memory_op and position == 0):
                    self.report(
                        "misplaced-array-base",
                        f"array base {operand.name!r} outside a "
                        "LOAD/STORE base position",
                        block,
                        index,
                    )
                else:
                    self._check_array_base(block, index, operand)
            elif isinstance(operand, VarRef):
                self._check_varref(block, index, operand, "operand")
            elif not isinstance(operand, (Temp, Const)):
                self.report(
                    "bad-operand",
                    f"operand {operand!r} is not a Temp/VarRef/"
                    "ArrayBase/Const",
                    block,
                    index,
                )
        if memory_op and instruction.operands and not isinstance(
            instruction.operands[0], ArrayBase
        ):
            self.report(
                "missing-array-base",
                f"{instruction.opcode.mnemonic} base operand is "
                f"{instruction.operands[0]!r}, expected an ArrayBase",
                block,
                index,
            )
        if isinstance(instruction.dest, VarRef):
            self._check_varref(block, index, instruction.dest, "dest")
        if instruction.opcode is Opcode.CALL:
            self._check_call(block, index, instruction)

    def _check_array_base(
        self, block: BasicBlock, index: int, base: ArrayBase
    ) -> None:
        info = self.cfg.variables.get(base.name)
        if info is None:
            self.report(
                "unknown-variable",
                f"array base {base.name!r} is not in the variable table",
                block,
                index,
            )
        elif not info.is_array:
            self.report(
                "scalar-as-array",
                f"{base.name!r} is a scalar but used as an array base",
                block,
                index,
            )

    def _check_varref(
        self, block: BasicBlock, index: int, ref: VarRef, role: str
    ) -> None:
        info = self.cfg.variables.get(ref.name)
        if info is None:
            self.report(
                "unknown-variable",
                f"{role} {ref.name!r} is not in the variable table",
                block,
                index,
            )
        elif info.is_array:
            self.report(
                "array-as-scalar",
                f"{ref.name!r} is an array but used as a scalar {role}",
                block,
                index,
            )

    def _check_call(
        self, block: BasicBlock, index: int, instruction: Instruction
    ) -> None:
        if not instruction.callee:
            self.report("missing-callee", "CALL without a callee", block, index)
            return
        if self.cdfg is None:
            return
        callee_cfg = self.cdfg.cfgs.get(instruction.callee)
        if callee_cfg is None:
            self.report(
                "unknown-callee",
                f"CALL targets unknown function {instruction.callee!r}",
                block,
                index,
            )
            return
        expected = len(callee_cfg.param_names)
        if len(instruction.operands) != expected:
            self.report(
                "bad-call-arity",
                f"CALL {instruction.callee} passes "
                f"{len(instruction.operands)} argument(s), expected "
                f"{expected}",
                block,
                index,
            )

    # ------------------------------------------------------------------
    # 3. Dataflow (only on structurally clean functions)
    # ------------------------------------------------------------------
    def check_dataflow(self) -> None:
        self._check_temps()
        self._check_definite_assignment()
        self._check_loops()

    def _check_temps(self) -> None:
        for block in self.cfg.blocks.values():
            defined: set[Temp] = set()
            reported: set[Temp] = set()
            for index, instruction in enumerate(block.instructions):
                for operand in instruction.operands:
                    if (
                        isinstance(operand, Temp)
                        and operand not in defined
                        and operand not in reported
                    ):
                        self.report(
                            "temp-use-before-def",
                            f"{operand} read before any definition in "
                            "its block (temps are block-local)",
                            block,
                            index,
                        )
                        reported.add(operand)
                if isinstance(instruction.dest, Temp):
                    if instruction.dest in defined:
                        self.report(
                            "temp-redefinition",
                            f"{instruction.dest} defined more than once "
                            "in one block",
                            block,
                            index,
                        )
                    defined.add(instruction.dest)

    def _check_definite_assignment(self) -> None:
        result = DefiniteAssignment().solve(self.cfg)
        reachable = self.cfg.reachable_labels()
        for label in reachable:
            block = self.cfg.blocks[label]
            assigned = set(result.in_sets[label])
            for index, instruction in enumerate(block.instructions):
                for operand in instruction.operands:
                    if (
                        isinstance(operand, VarRef)
                        and operand.name not in assigned
                        and operand.name in self.cfg.variables
                        and not self.cfg.variables[operand.name].is_array
                    ):
                        self.report(
                            "use-before-def",
                            f"{operand.name!r} may be read before "
                            "assignment on some path",
                            block,
                            index,
                        )
                        # One report per (block, name) is enough.
                        assigned.add(operand.name)
                if isinstance(instruction.dest, VarRef):
                    assigned.add(instruction.dest.name)

    def _check_loops(self) -> None:
        dom = DominatorTree(self.cfg)
        forest = LoopForest(self.cfg, dom)
        for loop in forest.loops:
            for label in loop.body:
                if label == loop.header:
                    continue
                if not dom.dominates(loop.header, label):
                    self.report(
                        "loop-header-dominance",
                        f"loop header {loop.header!r} does not dominate "
                        f"body block {label!r}",
                        self.cfg.blocks.get(label) or self.cfg.blocks[loop.header],
                    )

    # ------------------------------------------------------------------
    def run(self) -> list[Diagnostic]:
        self.check_structure()
        self.check_shapes()
        if not any(d.severity == ERROR for d in self.diagnostics):
            self.check_dataflow()
        return self.diagnostics


def verify_cfg(
    cfg: ControlFlowGraph, cdfg: CDFG | None = None
) -> list[Diagnostic]:
    """All diagnostics for one function's CFG."""
    return _Checker(cfg, cdfg).run()


def verify_cdfg(cdfg: CDFG) -> VerificationReport:
    """Verify a whole CDFG; returns a report, never raises."""
    report = VerificationReport()
    seen_ids: dict[int, str] = {}
    for function_name, cfg in cdfg.cfgs.items():
        report.diagnostics.extend(verify_cfg(cfg, cdfg))
        for label in sorted(_safe_reachable(cfg)):
            block = cfg.blocks.get(label)
            if block is None:
                continue
            where = f"{function_name}/{label}"
            if block.bb_id < 1:
                report.diagnostics.append(
                    Diagnostic(
                        "unnumbered-block",
                        "reachable block has no program-wide bb_id",
                        function_name,
                        label,
                        block.bb_id,
                    )
                )
                continue
            if block.bb_id in seen_ids:
                report.diagnostics.append(
                    Diagnostic(
                        "duplicate-block-id",
                        f"bb_id {block.bb_id} also assigned to "
                        f"{seen_ids[block.bb_id]}",
                        function_name,
                        label,
                        block.bb_id,
                    )
                )
            seen_ids[block.bb_id] = where
            key = cdfg.key_for_id(block.bb_id) if block.bb_id in cdfg._by_id else None
            if key is None or key.function != function_name or key.label != label:
                report.diagnostics.append(
                    Diagnostic(
                        "block-id-mismatch",
                        f"bb_id {block.bb_id} maps to {key} in the CDFG "
                        "index",
                        function_name,
                        label,
                        block.bb_id,
                    )
                )
    if report.ok:
        # DFGs are only meaningful over structurally clean blocks.
        for key in cdfg.all_block_keys():
            dfg = cdfg.dfg(key)
            if not dfg.is_acyclic():
                block = cdfg.block(key)
                report.diagnostics.append(
                    Diagnostic(
                        "cyclic-dfg",
                        "block data-flow graph contains a cycle",
                        key.function,
                        key.label,
                        block.bb_id,
                    )
                )
    return report


def assert_verified(cdfg: CDFG, context: str = "") -> None:
    """Raise :class:`VerificationError` if the CDFG has any errors."""
    verify_cdfg(cdfg).raise_if_errors(context)


# ----------------------------------------------------------------------
# Sanitizer switch
# ----------------------------------------------------------------------
def _env_default() -> bool:
    return os.environ.get("REPRO_IR_SANITIZE", "1").lower() not in (
        "0",
        "off",
        "false",
        "no",
    )


_SANITIZE: bool | None = None


def sanitizer_enabled() -> bool:
    """Whether wired-in verification (build/pass/compile) is active."""
    if _SANITIZE is not None:
        return _SANITIZE
    return _env_default()


def set_sanitizer(enabled: bool | None) -> None:
    """Force the sanitizer on/off; ``None`` restores the env default."""
    global _SANITIZE
    _SANITIZE = enabled
