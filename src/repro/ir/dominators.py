"""Dominator computation (Cooper–Harvey–Kennedy iterative algorithm).

Dominators feed the natural-loop detector (:mod:`repro.ir.loops`), which the
analysis stage uses to restrict kernel candidates to blocks inside loops —
"the critical basic blocks are often located in nested loops" (§3).
"""

from __future__ import annotations

from .cfg import ControlFlowGraph


class DominatorTree:
    """Immediate-dominator tree for one CFG."""

    def __init__(self, cfg: ControlFlowGraph) -> None:
        self.cfg = cfg
        self.rpo = cfg.reverse_post_order()
        self._rpo_index = {label: i for i, label in enumerate(self.rpo)}
        self.idom: dict[str, str] = {}
        self._compute()

    def _compute(self) -> None:
        entry = self.cfg.entry_label
        assert entry is not None
        idom: dict[str, str | None] = {label: None for label in self.rpo}
        idom[entry] = entry
        preds = {
            label: [
                p for p in self.cfg.predecessors(label) if p in self._rpo_index
            ]
            for label in self.rpo
        }
        changed = True
        while changed:
            changed = False
            for label in self.rpo:
                if label == entry:
                    continue
                candidates = [p for p in preds[label] if idom[p] is not None]
                if not candidates:
                    continue
                new_idom = candidates[0]
                for pred in candidates[1:]:
                    new_idom = self._intersect(new_idom, pred, idom)
                if idom[label] != new_idom:
                    idom[label] = new_idom
                    changed = True
        self.idom = {k: v for k, v in idom.items() if v is not None}

    def _intersect(
        self, a: str, b: str, idom: dict[str, str | None]
    ) -> str:
        index = self._rpo_index
        while a != b:
            while index[a] > index[b]:
                parent = idom[a]
                assert parent is not None
                a = parent
            while index[b] > index[a]:
                parent = idom[b]
                assert parent is not None
                b = parent
        return a

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def immediate_dominator(self, label: str) -> str | None:
        if label == self.cfg.entry_label:
            return None
        return self.idom.get(label)

    def dominates(self, a: str, b: str) -> bool:
        """True if block ``a`` dominates block ``b`` (reflexive)."""
        current: str | None = b
        while current is not None:
            if current == a:
                return True
            if current == self.cfg.entry_label:
                return False
            current = self.idom.get(current)
        return False

    def dominators_of(self, label: str) -> list[str]:
        """All dominators of ``label``, from itself up to the entry."""
        chain = [label]
        current = label
        while current != self.cfg.entry_label:
            parent = self.idom.get(current)
            if parent is None:
                break
            chain.append(parent)
            current = parent
        return chain

    def children(self, label: str) -> list[str]:
        return [
            block
            for block, parent in self.idom.items()
            if parent == label and block != label
        ]


def compute_dominators(cfg: ControlFlowGraph) -> DominatorTree:
    return DominatorTree(cfg)
