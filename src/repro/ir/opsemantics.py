"""Shared evaluation semantics for IR opcodes.

Both the interpreter (dynamic analysis substrate) and the constant-folding
pass need to execute opcodes; keeping one evaluator guarantees they agree.

Integer semantics follow C-on-a-32-bit-word closely enough for the DSP
kernels we run: Python's arbitrary-precision ints with C-style truncating
division (the applications only divide positives, but we keep the semantics
honest), and logical results are 0/1 ints.
"""

from __future__ import annotations

import math

from .operations import Opcode

Number = int | float


def c_div(a: Number, b: Number) -> Number:
    if isinstance(a, float) or isinstance(b, float):
        return a / b
    if b == 0:
        raise ZeroDivisionError("integer division by zero")
    quotient = abs(a) // abs(b)
    if (a < 0) != (b < 0):
        quotient = -quotient
    return quotient


def c_mod(a: int, b: int) -> int:
    if b == 0:
        raise ZeroDivisionError("integer modulo by zero")
    return a - c_div(a, b) * b


def c_round(value: Number) -> int:
    """C-style round-half-away-from-zero, unlike Python's banker's
    rounding — DSP reference code expects this."""
    if value >= 0:
        return int(math.floor(value + 0.5))
    return int(math.ceil(value - 0.5))


# Backwards-compatible aliases (the public names are the unprefixed ones).
_c_div = c_div
_c_mod = c_mod


def _as_int(value: Number) -> int:
    return int(value)


def evaluate_opcode(opcode: Opcode, args: tuple[Number, ...]) -> Number:
    """Evaluate a value-producing opcode on concrete numbers."""
    if opcode is Opcode.ADD:
        return args[0] + args[1]
    if opcode is Opcode.SUB:
        return args[0] - args[1]
    if opcode is Opcode.MUL:
        return args[0] * args[1]
    if opcode is Opcode.DIV:
        return c_div(args[0], args[1])
    if opcode is Opcode.MOD:
        return c_mod(_as_int(args[0]), _as_int(args[1]))
    if opcode is Opcode.SHL:
        return _as_int(args[0]) << _as_int(args[1])
    if opcode is Opcode.SHR:
        return _as_int(args[0]) >> _as_int(args[1])
    if opcode is Opcode.AND:
        return _as_int(args[0]) & _as_int(args[1])
    if opcode is Opcode.OR:
        return _as_int(args[0]) | _as_int(args[1])
    if opcode is Opcode.XOR:
        return _as_int(args[0]) ^ _as_int(args[1])
    if opcode is Opcode.NEG:
        return -args[0]
    if opcode is Opcode.BNOT:
        return ~_as_int(args[0])
    if opcode is Opcode.LNOT:
        return 0 if args[0] else 1
    if opcode is Opcode.LT:
        return 1 if args[0] < args[1] else 0
    if opcode is Opcode.GT:
        return 1 if args[0] > args[1] else 0
    if opcode is Opcode.LE:
        return 1 if args[0] <= args[1] else 0
    if opcode is Opcode.GE:
        return 1 if args[0] >= args[1] else 0
    if opcode is Opcode.EQ:
        return 1 if args[0] == args[1] else 0
    if opcode is Opcode.NE:
        return 1 if args[0] != args[1] else 0
    if opcode is Opcode.SELECT:
        return args[1] if args[0] else args[2]
    if opcode is Opcode.ABS:
        return abs(args[0])
    if opcode is Opcode.MIN:
        return min(args[0], args[1])
    if opcode is Opcode.MAX:
        return max(args[0], args[1])
    if opcode is Opcode.SQRT:
        return math.sqrt(args[0])
    if opcode is Opcode.SIN:
        return math.sin(args[0])
    if opcode is Opcode.COS:
        return math.cos(args[0])
    if opcode is Opcode.FLOOR:
        return float(math.floor(args[0]))
    if opcode is Opcode.ROUND:
        return c_round(args[0])
    if opcode is Opcode.I2F:
        return float(args[0])
    if opcode is Opcode.F2I:
        return int(args[0])
    if opcode is Opcode.COPY:
        return args[0]
    raise ValueError(f"opcode {opcode.mnemonic!r} is not a pure value operation")


#: Opcodes safe to constant-fold (pure, deterministic, no memory access).
FOLDABLE_OPCODES = frozenset(
    {
        Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV, Opcode.MOD,
        Opcode.SHL, Opcode.SHR, Opcode.AND, Opcode.OR, Opcode.XOR,
        Opcode.NEG, Opcode.BNOT, Opcode.LNOT,
        Opcode.LT, Opcode.GT, Opcode.LE, Opcode.GE, Opcode.EQ, Opcode.NE,
        Opcode.SELECT, Opcode.ABS, Opcode.MIN, Opcode.MAX,
        Opcode.FLOOR, Opcode.ROUND, Opcode.I2F, Opcode.F2I,
    }
)
