"""Control-flow graphs over basic blocks.

One :class:`ControlFlowGraph` per function.  Provides the traversals the
rest of the pipeline relies on (reverse post-order for dataflow, reachable
sets for cleanup) plus a NetworkX export for analyses and debugging.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

import networkx as nx

from ..frontend.ast_nodes import ArrayType, Type
from .basicblock import BasicBlock
from .operations import Opcode


@dataclass
class VariableInfo:
    """Storage-level facts about one function-visible variable."""

    name: str
    var_type: Type | ArrayType
    is_param: bool = False
    is_global: bool = False
    is_const: bool = False

    @property
    def is_array(self) -> bool:
        return isinstance(self.var_type, ArrayType)

    @property
    def element_type(self) -> Type:
        if isinstance(self.var_type, ArrayType):
            return self.var_type.element
        return self.var_type


class ControlFlowGraph:
    """CFG for a single function."""

    def __init__(
        self, function_name: str, return_type: Type = Type.VOID
    ) -> None:
        self.function_name = function_name
        self.return_type = return_type
        self.blocks: dict[str, BasicBlock] = {}
        self.entry_label: str | None = None
        self.param_names: list[str] = []
        self.variables: dict[str, VariableInfo] = {}
        self._label_counter = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def new_block(self, hint: str = "bb") -> BasicBlock:
        label = f"{hint}{self._label_counter}"
        self._label_counter += 1
        block = BasicBlock(label)
        self.blocks[label] = block
        if self.entry_label is None:
            self.entry_label = label
        return block

    def add_variable(self, info: VariableInfo) -> None:
        self.variables[info.name] = info

    @property
    def entry(self) -> BasicBlock:
        if self.entry_label is None:
            raise ValueError(f"CFG for {self.function_name!r} has no blocks")
        return self.blocks[self.entry_label]

    def block(self, label: str) -> BasicBlock:
        return self.blocks[label]

    # ------------------------------------------------------------------
    # Graph structure
    # ------------------------------------------------------------------
    def successors(self, label: str) -> tuple[str, ...]:
        return self.blocks[label].successor_labels()

    def predecessors(self, label: str) -> list[str]:
        return [
            other.label
            for other in self.blocks.values()
            if label in other.successor_labels()
        ]

    def exit_labels(self) -> list[str]:
        """Blocks ending in RET (or falling off — should not happen)."""
        exits = []
        for block in self.blocks.values():
            terminator = block.terminator
            if terminator is not None and terminator.opcode is Opcode.RET:
                exits.append(block.label)
        return exits

    def reachable_labels(self) -> set[str]:
        if self.entry_label is None:
            return set()
        seen: set[str] = set()
        stack = [self.entry_label]
        while stack:
            label = stack.pop()
            if label in seen:
                continue
            seen.add(label)
            stack.extend(self.successors(label))
        return seen

    def remove_unreachable_blocks(self) -> int:
        """Drop blocks not reachable from the entry; returns removed count."""
        reachable = self.reachable_labels()
        unreachable = [b for b in self.blocks if b not in reachable]
        for label in unreachable:
            del self.blocks[label]
        return len(unreachable)

    def reverse_post_order(self) -> list[str]:
        """Labels in reverse post-order (a topological-ish order for
        forward dataflow over reducible CFGs)."""
        if self.entry_label is None:
            return []
        seen: set[str] = set()
        order: list[str] = []

        def visit(label: str) -> None:
            stack: list[tuple[str, int]] = [(label, 0)]
            while stack:
                current, child_index = stack[-1]
                if current not in seen:
                    seen.add(current)
                successors = self.successors(current)
                if child_index < len(successors):
                    stack[-1] = (current, child_index + 1)
                    child = successors[child_index]
                    if child not in seen:
                        stack.append((child, 0))
                else:
                    order.append(current)
                    stack.pop()

        visit(self.entry_label)
        order.reverse()
        return order

    def to_networkx(self) -> "nx.DiGraph":
        """Export the CFG as a NetworkX DiGraph (nodes = labels)."""
        graph = nx.DiGraph(function=self.function_name)
        for label, block in self.blocks.items():
            graph.add_node(label, size=len(block), bb_id=block.bb_id)
        for label in self.blocks:
            for successor in self.successors(label):
                graph.add_edge(label, successor)
        return graph

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def verify(self) -> None:
        """Raise ``ValueError`` on malformed CFGs.

        Checks: all blocks terminated, all branch targets exist, entry set,
        and RET presence/absence matches the function's return type.
        """
        if self.entry_label is None:
            raise ValueError(f"{self.function_name}: CFG has no entry block")
        for block in self.blocks.values():
            if not block.is_terminated:
                raise ValueError(
                    f"{self.function_name}: block {block.label!r} lacks a "
                    "terminator"
                )
            for index, instruction in enumerate(block.instructions[:-1]):
                if instruction.opcode.is_control:
                    raise ValueError(
                        f"{self.function_name}: control instruction in the "
                        f"middle of {block.label!r} (position {index})"
                    )
            for target in block.successor_labels():
                if target not in self.blocks:
                    raise ValueError(
                        f"{self.function_name}: branch from {block.label!r} "
                        f"to unknown block {target!r}"
                    )
        if not self.exit_labels():
            raise ValueError(f"{self.function_name}: no RET block")

    def __iter__(self) -> Iterator[BasicBlock]:
        return iter(self.blocks.values())

    def __len__(self) -> int:
        return len(self.blocks)

    def __str__(self) -> str:
        lines = [f"function {self.function_name}({', '.join(self.param_names)}):"]
        for label in self.reverse_post_order():
            lines.append(str(self.blocks[label]))
        return "\n".join(lines)
