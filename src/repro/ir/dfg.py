"""Per-basic-block data-flow graphs.

The mapping algorithms of §3.2/§3.3 operate on the DFG of each basic block:
nodes are the block's operations, edges are data dependencies.  We also add
conservative memory-ordering edges (store->load, store->store, load->store
on the same array) so schedulers cannot reorder conflicting accesses.

ASAP levels follow the paper's convention (level 1 = nodes with no
in-block predecessors); "all the DFG nodes with the same level can be
considered for parallel execution without any dependency check" (§3.2).
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

import networkx as nx

from .basicblock import BasicBlock
from .operations import (
    ArrayBase,
    Instruction,
    OpClass,
    Opcode,
    Temp,
    VarRef,
)


@dataclass(frozen=True)
class DFGNode:
    """One operation node in a basic block's DFG."""

    node_id: int
    instruction: Instruction

    @property
    def opcode(self) -> Opcode:
        return self.instruction.opcode

    @property
    def op_class(self) -> OpClass:
        return self.instruction.op_class

    def __str__(self) -> str:
        return f"n{self.node_id}:{self.instruction.opcode.mnemonic}"


class DataFlowGraph:
    """Dependency DAG over the body (non-terminator) ops of one block."""

    def __init__(self, block: BasicBlock) -> None:
        self.block = block
        self.nodes: list[DFGNode] = []
        self.graph = nx.DiGraph()
        self.live_in_scalars: set[str] = set()
        self.live_out_scalars: set[str] = set()
        self.arrays_read: set[str] = set()
        self.arrays_written: set[str] = set()
        self._build()
        self._asap: dict[int, int] | None = None
        self._alap: dict[int, int] | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        body = self.block.body
        self.nodes = [DFGNode(i, ins) for i, ins in enumerate(body)]
        for node in self.nodes:
            self.graph.add_node(node.node_id)

        temp_def: dict[Temp, int] = {}
        var_def: dict[str, int] = {}
        last_store: dict[str, int] = {}
        loads_since_store: dict[str, list[int]] = {}

        for node in self.nodes:
            ins = node.instruction
            # Value dependencies.
            for operand in ins.operands:
                if isinstance(operand, Temp):
                    producer = temp_def.get(operand)
                    if producer is not None:
                        self._add_edge(producer, node.node_id, "data")
                elif isinstance(operand, VarRef):
                    producer = var_def.get(operand.name)
                    if producer is not None:
                        self._add_edge(producer, node.node_id, "data")
                    else:
                        self.live_in_scalars.add(operand.name)
                elif isinstance(operand, ArrayBase):
                    if ins.opcode is Opcode.LOAD or ins.opcode is Opcode.CALL:
                        self.arrays_read.add(operand.name)
                    if ins.opcode is Opcode.STORE:
                        self.arrays_written.add(operand.name)
                    if ins.opcode is Opcode.CALL:
                        # Calls may read and write the array.
                        self.arrays_written.add(operand.name)

            # Memory-ordering dependencies.
            if ins.opcode is Opcode.LOAD:
                base = ins.operands[0]
                assert isinstance(base, ArrayBase)
                store = last_store.get(base.name)
                if store is not None:
                    self._add_edge(store, node.node_id, "mem")
                loads_since_store.setdefault(base.name, []).append(node.node_id)
            elif ins.opcode is Opcode.STORE:
                base = ins.operands[0]
                assert isinstance(base, ArrayBase)
                store = last_store.get(base.name)
                if store is not None:
                    self._add_edge(store, node.node_id, "mem")
                for load in loads_since_store.get(base.name, []):
                    self._add_edge(load, node.node_id, "mem")
                loads_since_store[base.name] = []
                last_store[base.name] = node.node_id
            elif ins.opcode is Opcode.CALL:
                # A call is a scheduling barrier for every array it touches.
                for operand in ins.operands:
                    if isinstance(operand, ArrayBase):
                        store = last_store.get(operand.name)
                        if store is not None:
                            self._add_edge(store, node.node_id, "mem")
                        for load in loads_since_store.get(operand.name, []):
                            self._add_edge(load, node.node_id, "mem")
                        loads_since_store[operand.name] = []
                        last_store[operand.name] = node.node_id

            # Record definitions.
            if isinstance(ins.dest, Temp):
                temp_def[ins.dest] = node.node_id
            elif isinstance(ins.dest, VarRef):
                var_def[ins.dest.name] = node.node_id
                self.live_out_scalars.add(ins.dest.name)

        # The terminator's condition (if any) consumes block values too.
        terminator = self.block.terminator
        if terminator is not None:
            for operand in terminator.operands:
                if isinstance(operand, VarRef) and operand.name not in var_def:
                    self.live_in_scalars.add(operand.name)

    def _add_edge(self, src: int, dst: int, kind: str) -> None:
        if src == dst:
            return
        self.graph.add_edge(src, dst, kind=kind)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def node(self, node_id: int) -> DFGNode:
        return self.nodes[node_id]

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self) -> Iterator[DFGNode]:
        return iter(self.nodes)

    def predecessors(self, node_id: int) -> list[int]:
        return list(self.graph.predecessors(node_id))

    def successors(self, node_id: int) -> list[int]:
        return list(self.graph.successors(node_id))

    def is_acyclic(self) -> bool:
        return nx.is_directed_acyclic_graph(self.graph)

    def topological_order(self) -> list[int]:
        # Node ids follow instruction order, which is already a valid
        # topological order for the dependence DAG; use it for determinism.
        return [node.node_id for node in self.nodes]

    # ------------------------------------------------------------------
    # Levels (paper §3.2)
    # ------------------------------------------------------------------
    def asap_levels(self) -> dict[int, int]:
        """1-based ASAP level per node: 1 + max over predecessors."""
        if self._asap is None:
            levels: dict[int, int] = {}
            for node_id in self.topological_order():
                preds = self.predecessors(node_id)
                levels[node_id] = (
                    1 if not preds else 1 + max(levels[p] for p in preds)
                )
            self._asap = levels
        return dict(self._asap)

    @property
    def max_level(self) -> int:
        levels = self.asap_levels()
        return max(levels.values(), default=0)

    def alap_levels(self) -> dict[int, int]:
        """1-based ALAP levels relative to the DFG's max ASAP level."""
        if self._alap is None:
            depth = self.max_level
            levels: dict[int, int] = {}
            for node_id in reversed(self.topological_order()):
                succs = self.successors(node_id)
                levels[node_id] = (
                    depth if not succs else min(levels[s] for s in succs) - 1
                )
            self._alap = levels
        return dict(self._alap)

    def slack(self) -> dict[int, int]:
        asap = self.asap_levels()
        alap = self.alap_levels()
        return {node_id: alap[node_id] - asap[node_id] for node_id in asap}

    def nodes_at_level(self, level: int) -> list[DFGNode]:
        asap = self.asap_levels()
        return [node for node in self.nodes if asap[node.node_id] == level]

    def levels(self) -> list[list[DFGNode]]:
        """Nodes grouped by ASAP level, index 0 = level 1."""
        return [self.nodes_at_level(level) for level in range(1, self.max_level + 1)]

    def critical_path_length(self) -> int:
        return self.max_level

    # ------------------------------------------------------------------
    # Statistics for analysis / communication model
    # ------------------------------------------------------------------
    def op_class_histogram(self) -> dict[OpClass, int]:
        counts: dict[OpClass, int] = {}
        for node in self.nodes:
            counts[node.op_class] = counts.get(node.op_class, 0) + 1
        return counts

    def compute_nodes(self) -> list[DFGNode]:
        """Nodes that occupy a functional unit (ALU/MUL/DIV)."""
        return [
            node
            for node in self.nodes
            if node.op_class in (OpClass.ALU, OpClass.MUL, OpClass.DIV)
        ]

    def parallelism_profile(self) -> list[int]:
        """Number of nodes per ASAP level — the width the mappers can use."""
        return [len(group) for group in self.levels()]

    def average_parallelism(self) -> float:
        profile = self.parallelism_profile()
        if not profile:
            return 0.0
        return sum(profile) / len(profile)

    def communication_words(self) -> int:
        """Scalar words crossing the block boundary (live-in + live-out).

        This feeds the shared-memory communication model (t_comm in Eq. 2):
        when a kernel moves to the coarse-grain data-path these are the
        values exchanged through the shared data memory, alongside array
        traffic already counted as LOAD/STORE operations.
        """
        return len(self.live_in_scalars) + len(self.live_out_scalars)

    def to_networkx(self) -> nx.DiGraph:
        """A labelled copy of the dependency graph for external tooling."""
        graph = nx.DiGraph(block=self.block.label)
        for node in self.nodes:
            graph.add_node(
                node.node_id,
                opcode=node.opcode.mnemonic,
                op_class=node.op_class.value,
            )
        graph.add_edges_from(self.graph.edges(data=True))
        return graph


@dataclass
class DFGStatistics:
    """Summary numbers for one basic block's DFG."""

    node_count: int
    compute_count: int
    memory_count: int
    depth: int
    max_width: int
    average_parallelism: float
    alu_ops: int
    mul_ops: int
    div_ops: int

    @classmethod
    def from_dfg(cls, dfg: DataFlowGraph) -> "DFGStatistics":
        histogram = dfg.op_class_histogram()
        profile = dfg.parallelism_profile()
        return cls(
            node_count=len(dfg),
            compute_count=len(dfg.compute_nodes()),
            memory_count=histogram.get(OpClass.MEM, 0),
            depth=dfg.max_level,
            max_width=max(profile, default=0),
            average_parallelism=dfg.average_parallelism(),
            alu_ops=histogram.get(OpClass.ALU, 0),
            mul_ops=histogram.get(OpClass.MUL, 0),
            div_ops=histogram.get(OpClass.DIV, 0),
        )
