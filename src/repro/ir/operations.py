"""Three-address intermediate representation operations.

The CDFG (paper §3, step 1) is built from a conventional three-address code:
each basic block holds a list of :class:`Instruction` whose operands are
virtual registers (:class:`Temp`), named variables (:class:`VarRef`) or
constants (:class:`Const`).

Every opcode is classified into a hardware *operator class* so that the
static analysis (§3.1) can apply the paper's weight model (ALU weight 1,
multiplier weight 2) and so the mappers know which functional unit executes
the operation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..frontend.ast_nodes import Type
from ..frontend.errors import SourceLocation, UNKNOWN_LOCATION


class OpClass(enum.Enum):
    """Hardware operator class used for weights, area and scheduling."""

    ALU = "alu"          # add/sub/logic/shift/compare — weight 1
    MUL = "mul"          # multiply — weight 2
    DIV = "div"          # divide/modulo — weight 4 (absent from paper DFGs)
    MEM = "mem"          # shared-memory load/store
    MOVE = "move"        # copies and constants (wires/registers)
    CONTROL = "control"  # branches, returns
    CALL = "call"        # function invocation


class Opcode(enum.Enum):
    """Every operation the lowering can emit."""

    # Arithmetic / logic (value-producing)
    ADD = ("add", OpClass.ALU)
    SUB = ("sub", OpClass.ALU)
    MUL = ("mul", OpClass.MUL)
    DIV = ("div", OpClass.DIV)
    MOD = ("mod", OpClass.DIV)
    SHL = ("shl", OpClass.ALU)
    SHR = ("shr", OpClass.ALU)
    AND = ("and", OpClass.ALU)
    OR = ("or", OpClass.ALU)
    XOR = ("xor", OpClass.ALU)
    NEG = ("neg", OpClass.ALU)
    BNOT = ("bnot", OpClass.ALU)
    LNOT = ("lnot", OpClass.ALU)
    LT = ("lt", OpClass.ALU)
    GT = ("gt", OpClass.ALU)
    LE = ("le", OpClass.ALU)
    GE = ("ge", OpClass.ALU)
    EQ = ("eq", OpClass.ALU)
    NE = ("ne", OpClass.ALU)
    SELECT = ("select", OpClass.ALU)  # dest = cond ? a : b
    ABS = ("abs", OpClass.ALU)
    MIN = ("min", OpClass.ALU)
    MAX = ("max", OpClass.ALU)
    SQRT = ("sqrt", OpClass.DIV)
    SIN = ("sin", OpClass.DIV)
    COS = ("cos", OpClass.DIV)
    FLOOR = ("floor", OpClass.ALU)
    ROUND = ("round", OpClass.ALU)
    I2F = ("i2f", OpClass.ALU)
    F2I = ("f2i", OpClass.ALU)

    # Data movement
    COPY = ("copy", OpClass.MOVE)
    CONST = ("const", OpClass.MOVE)

    # Memory
    LOAD = ("load", OpClass.MEM)    # dest = base[index]
    STORE = ("store", OpClass.MEM)  # base[index] = value

    # Control
    BR = ("br", OpClass.CONTROL)    # unconditional jump
    CBR = ("cbr", OpClass.CONTROL)  # conditional jump (cond, then, else)
    RET = ("ret", OpClass.CONTROL)
    CALL = ("call", OpClass.CALL)

    def __init__(self, mnemonic: str, op_class: OpClass) -> None:
        self.mnemonic = mnemonic
        self.op_class = op_class

    @property
    def is_control(self) -> bool:
        return self.op_class is OpClass.CONTROL

    @property
    def is_memory(self) -> bool:
        return self.op_class is OpClass.MEM

    @property
    def produces_value(self) -> bool:
        return self.op_class not in (OpClass.CONTROL,) and self is not Opcode.STORE


#: AST binary operator -> opcode used by the lowering pass.
BINARY_OPCODES = {
    "+": Opcode.ADD,
    "-": Opcode.SUB,
    "*": Opcode.MUL,
    "/": Opcode.DIV,
    "%": Opcode.MOD,
    "<<": Opcode.SHL,
    ">>": Opcode.SHR,
    "&": Opcode.AND,
    "|": Opcode.OR,
    "^": Opcode.XOR,
    "<": Opcode.LT,
    ">": Opcode.GT,
    "<=": Opcode.LE,
    ">=": Opcode.GE,
    "==": Opcode.EQ,
    "!=": Opcode.NE,
}

#: Intrinsic name -> opcode.
INTRINSIC_OPCODES = {
    "abs": Opcode.ABS,
    "min": Opcode.MIN,
    "max": Opcode.MAX,
    "sqrt": Opcode.SQRT,
    "sin": Opcode.SIN,
    "cos": Opcode.COS,
    "floor": Opcode.FLOOR,
    "round": Opcode.ROUND,
    "__cast_int": Opcode.F2I,
    "__cast_float": Opcode.I2F,
}


# ----------------------------------------------------------------------
# Operands
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Temp:
    """A virtual register produced by exactly one instruction per block."""

    index: int
    vtype: Type = Type.INT

    def __str__(self) -> str:
        return f"%t{self.index}"


@dataclass(frozen=True)
class VarRef:
    """A named scalar variable (local, parameter or global)."""

    name: str
    vtype: Type = Type.INT

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class ArrayBase:
    """A named array used as the base operand of LOAD/STORE.

    ``local`` marks function-local scratch buffers: they live in the
    executing fabric's local storage (FPGA BRAM / CGC register bank) and
    are accessed at full fabric speed, unlike globals which live in the
    platform's shared data memory (Figure 1).
    """

    name: str
    element_type: Type = Type.INT
    local: bool = False

    def __str__(self) -> str:
        prefix = "%" if self.local else "@"
        return f"{prefix}{self.name}"


@dataclass(frozen=True)
class Const:
    """An immediate constant."""

    value: int | float

    def __str__(self) -> str:
        return f"#{self.value}"

    @property
    def vtype(self) -> Type:
        return Type.FLOAT if isinstance(self.value, float) else Type.INT


Operand = Temp | VarRef | ArrayBase | Const
Value = Temp | VarRef | Const


# ----------------------------------------------------------------------
# Instruction
# ----------------------------------------------------------------------
@dataclass
class Instruction:
    """One three-address operation.

    Field usage by opcode family:

    * value ops — ``dest`` is a Temp/VarRef, ``operands`` are the inputs;
    * ``LOAD`` — operands = (ArrayBase, index value);
    * ``STORE`` — operands = (ArrayBase, index value, stored value), no dest;
    * ``BR`` — ``targets = (label,)``;
    * ``CBR`` — operands = (condition,), ``targets = (then, else)``;
    * ``RET`` — operands = () or (value,);
    * ``CALL`` — ``callee`` set, operands are the arguments, dest optional.
    """

    opcode: Opcode
    dest: Temp | VarRef | None = None
    operands: tuple[Operand, ...] = ()
    targets: tuple[str, ...] = ()
    callee: str | None = None
    result_type: Type = Type.INT
    location: SourceLocation = field(default=UNKNOWN_LOCATION)

    @property
    def op_class(self) -> OpClass:
        return self.opcode.op_class

    def uses(self) -> tuple[Operand, ...]:
        """Operands read by this instruction (includes array bases)."""
        return self.operands

    def value_uses(self) -> tuple[Value, ...]:
        """Only the scalar value operands (Temp/VarRef/Const)."""
        return tuple(
            op for op in self.operands if isinstance(op, (Temp, VarRef, Const))
        )

    def __str__(self) -> str:
        parts = [self.opcode.mnemonic]
        if self.callee:
            parts.append(self.callee)
        if self.dest is not None:
            prefix = f"{self.dest} = "
        else:
            prefix = ""
        operand_text = ", ".join(str(op) for op in self.operands)
        target_text = ", ".join(f"->{t}" for t in self.targets)
        body = " ".join(p for p in (operand_text, target_text) if p)
        return f"{prefix}{' '.join(parts)} {body}".rstrip()


class TempFactory:
    """Allocates fresh virtual registers for one function's lowering."""

    def __init__(self) -> None:
        self._next = 0

    def fresh(self, vtype: Type = Type.INT) -> Temp:
        temp = Temp(self._next, vtype)
        self._next += 1
        return temp

    @property
    def count(self) -> int:
        return self._next
