"""AST -> three-address CFG lowering (CDFG creation, paper §3 step 1).

Design notes:

* Scalars live in named storage (:class:`VarRef`); every expression result
  flows through fresh :class:`Temp` registers, which keeps per-block DFG
  construction trivial (one def per temp).
* Array accesses lower to ``LOAD``/``STORE`` with the multi-dimensional
  index linearized by explicit MUL/ADD operations, exactly the address
  arithmetic a compiler would materialize for the reconfigurable fabric.
* ``&&``/``||`` are lowered **without** short-circuiting (both sides are
  evaluated, then combined with ALU ops).  Expressions in the language have
  no side effects other than calls, and data-flow-style evaluation matches
  how HLS tools flatten conditions into predicated DFGs.
* The C ternary becomes a ``SELECT`` data-flow node rather than control
  flow, again mirroring HLS predication.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..frontend.ast_nodes import (
    ArrayRef,
    ArrayType,
    AssignStmt,
    BinaryExpr,
    BinaryOp,
    BlockStmt,
    BreakStmt,
    CallExpr,
    ConditionalExpr,
    ContinueStmt,
    DeclStmt,
    DoWhileStmt,
    Expr,
    ExprStmt,
    FloatLiteral,
    ForStmt,
    FunctionDecl,
    IfStmt,
    IntLiteral,
    NameRef,
    Program,
    ReturnStmt,
    SourceLocation,
    Stmt,
    Type,
    UnaryExpr,
    UnaryOp,
    WhileStmt,
    unify_numeric,
)
from ..frontend.errors import SemanticError
from .basicblock import BasicBlock
from .cfg import ControlFlowGraph, VariableInfo
from .operations import (
    ArrayBase,
    BINARY_OPCODES,
    Const,
    Instruction,
    INTRINSIC_OPCODES,
    Opcode,
    Temp,
    TempFactory,
    Value,
    VarRef,
)


@dataclass
class _LoopContext:
    """Branch targets for break/continue inside the innermost loop."""

    break_label: str
    continue_label: str


class FunctionLowerer:
    """Lowers one function declaration to a :class:`ControlFlowGraph`."""

    def __init__(self, function: FunctionDecl, program: Program) -> None:
        self.function = function
        self.program = program
        self.cfg = ControlFlowGraph(function.name, function.return_type)
        self.temps = TempFactory()
        self.current: BasicBlock | None = None
        self.loop_stack: list[_LoopContext] = []
        self._declare_symbols()

    # ------------------------------------------------------------------
    # Symbol bookkeeping
    # ------------------------------------------------------------------
    def _declare_symbols(self) -> None:
        for decl in self.program.globals:
            self.cfg.add_variable(
                VariableInfo(
                    decl.name,
                    decl.decl_type,
                    is_global=True,
                    is_const=decl.is_const,
                )
            )
        for param in self.function.params:
            self.cfg.add_variable(
                VariableInfo(param.name, param.param_type, is_param=True)
            )
            self.cfg.param_names.append(param.name)

    def _variable(self, name: str) -> VariableInfo:
        info = self.cfg.variables.get(name)
        if info is None:
            raise SemanticError(
                f"lowering saw undeclared name {name!r} (semantic analysis "
                "should have rejected this program)"
            )
        return info

    # ------------------------------------------------------------------
    # Emission helpers
    # ------------------------------------------------------------------
    def _block(self) -> BasicBlock:
        assert self.current is not None, "no active block"
        return self.current

    def _start_block(self, hint: str = "bb") -> BasicBlock:
        block = self.cfg.new_block(hint)
        self.current = block
        return block

    def _emit(self, instruction: Instruction) -> None:
        block = self._block()
        if block.is_terminated:
            # Statements after return/break/continue are unreachable; give
            # them their own block, which CFG cleanup then removes.
            block = self._start_block("dead")
        block.append(instruction)

    def _branch_to(self, label: str) -> None:
        """Terminate the current block with BR if it is still open."""
        block = self.current
        if block is not None and not block.is_terminated:
            block.append(Instruction(Opcode.BR, targets=(label,)))

    def _emit_value_op(
        self,
        opcode: Opcode,
        operands: tuple,
        result_type: Type,
        location: SourceLocation,
    ) -> Temp:
        dest = self.temps.fresh(result_type)
        self._emit(
            Instruction(
                opcode,
                dest=dest,
                operands=operands,
                result_type=result_type,
                location=location,
            )
        )
        return dest

    # ------------------------------------------------------------------
    # Values & types
    # ------------------------------------------------------------------
    def _value_type(self, value: Value) -> Type:
        if isinstance(value, (Temp, VarRef)):
            return value.vtype
        return value.vtype  # Const

    def _lower_linear_index(self, ref: ArrayRef, dims: tuple[int, ...]) -> Value:
        """Linearize ``a[i][j]`` to ``i*dim1 + j`` with explicit IR ops."""
        indices = [self._lower_expr(index) for index in ref.indices]
        if len(indices) == 1:
            return indices[0]
        linear = indices[0]
        for dim, index in zip(dims[1:], indices[1:], strict=True):
            scaled = self._emit_value_op(
                Opcode.MUL, (linear, Const(dim)), Type.INT, ref.location
            )
            linear = self._emit_value_op(
                Opcode.ADD, (scaled, index), Type.INT, ref.location
            )
        return linear

    # ------------------------------------------------------------------
    # Expression lowering
    # ------------------------------------------------------------------
    def _lower_expr(self, expr: Expr) -> Value:
        if isinstance(expr, IntLiteral):
            return Const(int(expr.value))
        if isinstance(expr, FloatLiteral):
            return Const(float(expr.value))
        if isinstance(expr, NameRef):
            info = self._variable(expr.name)
            if info.is_array:
                raise SemanticError(
                    f"whole array {expr.name!r} used as a scalar value",
                    expr.location,
                )
            return VarRef(expr.name, info.element_type)
        if isinstance(expr, ArrayRef):
            info = self._variable(expr.name)
            if not info.is_array:
                raise SemanticError(
                    f"indexing scalar {expr.name!r}", expr.location
                )
            assert isinstance(info.var_type, ArrayType)
            index = self._lower_linear_index(expr, info.var_type.dimensions)
            base = ArrayBase(
                expr.name,
                info.element_type,
                local=not (info.is_global or info.is_param),
            )
            return self._emit_value_op(
                Opcode.LOAD,
                (base, index),
                info.element_type,
                expr.location,
            )
        if isinstance(expr, UnaryExpr):
            return self._lower_unary(expr)
        if isinstance(expr, BinaryExpr):
            return self._lower_binary(expr)
        if isinstance(expr, ConditionalExpr):
            cond = self._lower_expr(expr.cond)
            then = self._lower_expr(expr.then)
            otherwise = self._lower_expr(expr.otherwise)
            result_type = unify_numeric(
                self._value_type(then), self._value_type(otherwise)
            )
            return self._emit_value_op(
                Opcode.SELECT, (cond, then, otherwise), result_type, expr.location
            )
        if isinstance(expr, CallExpr):
            return self._lower_call(expr)
        raise AssertionError(f"unhandled expression {type(expr).__name__}")

    def _lower_unary(self, expr: UnaryExpr) -> Value:
        operand = self._lower_expr(expr.operand)
        operand_type = self._value_type(operand)
        if expr.op is UnaryOp.POS:
            return operand
        if expr.op is UnaryOp.NEG:
            return self._emit_value_op(
                Opcode.NEG, (operand,), operand_type, expr.location
            )
        if expr.op is UnaryOp.BNOT:
            return self._emit_value_op(
                Opcode.BNOT, (operand,), Type.INT, expr.location
            )
        if expr.op is UnaryOp.NOT:
            return self._emit_value_op(
                Opcode.LNOT, (operand,), Type.INT, expr.location
            )
        raise AssertionError(f"unhandled unary operator {expr.op}")

    def _lower_binary(self, expr: BinaryExpr) -> Value:
        if expr.op in (BinaryOp.LAND, BinaryOp.LOR):
            left = self._lower_expr(expr.left)
            right = self._lower_expr(expr.right)
            left_bool = self._emit_value_op(
                Opcode.NE, (left, Const(0)), Type.INT, expr.location
            )
            right_bool = self._emit_value_op(
                Opcode.NE, (right, Const(0)), Type.INT, expr.location
            )
            opcode = Opcode.AND if expr.op is BinaryOp.LAND else Opcode.OR
            return self._emit_value_op(
                opcode, (left_bool, right_bool), Type.INT, expr.location
            )
        left = self._lower_expr(expr.left)
        right = self._lower_expr(expr.right)
        opcode = BINARY_OPCODES[expr.op.value]
        comparisons = {
            Opcode.LT, Opcode.GT, Opcode.LE, Opcode.GE, Opcode.EQ, Opcode.NE,
        }
        if opcode in comparisons:
            result_type = Type.INT
        else:
            result_type = unify_numeric(
                self._value_type(left), self._value_type(right)
            )
        return self._emit_value_op(
            opcode, (left, right), result_type, expr.location
        )

    def _lower_call(self, expr: CallExpr) -> Value:
        intrinsic = INTRINSIC_OPCODES.get(expr.callee)
        if intrinsic is not None:
            operands = tuple(self._lower_expr(arg) for arg in expr.args)
            if intrinsic in (Opcode.SQRT, Opcode.SIN, Opcode.COS, Opcode.FLOOR):
                result_type = Type.FLOAT
            elif intrinsic in (Opcode.F2I, Opcode.ROUND):
                result_type = Type.INT
            elif intrinsic is Opcode.I2F:
                result_type = Type.FLOAT
            else:
                result_type = (
                    self._value_type(operands[0]) if operands else Type.INT
                )
            return self._emit_value_op(
                intrinsic, operands, result_type, expr.location
            )
        operands = []
        for arg in expr.args:
            if isinstance(arg, NameRef):
                info = self._variable(arg.name)
                if info.is_array:
                    operands.append(
                        ArrayBase(
                            arg.name,
                            info.element_type,
                            local=not (info.is_global or info.is_param),
                        )
                    )
                    continue
            operands.append(self._lower_expr(arg))
        try:
            callee = self.program.function(expr.callee)
            result_type = callee.return_type
        except KeyError as exc:
            raise SemanticError(
                f"call to unknown function {expr.callee!r}", expr.location
            ) from exc
        dest = (
            self.temps.fresh(result_type)
            if result_type is not Type.VOID
            else None
        )
        self._emit(
            Instruction(
                Opcode.CALL,
                dest=dest,
                operands=tuple(operands),
                callee=expr.callee,
                result_type=result_type,
                location=expr.location,
            )
        )
        if dest is None:
            return Const(0)
        return dest

    # ------------------------------------------------------------------
    # Statement lowering
    # ------------------------------------------------------------------
    def _lower_statement(self, stmt: Stmt) -> None:
        if isinstance(stmt, BlockStmt):
            for child in stmt.body:
                self._lower_statement(child)
        elif isinstance(stmt, DeclStmt):
            self._lower_decl(stmt)
        elif isinstance(stmt, AssignStmt):
            self._lower_assign(stmt)
        elif isinstance(stmt, ExprStmt):
            self._lower_expr(stmt.expr)
        elif isinstance(stmt, IfStmt):
            self._lower_if(stmt)
        elif isinstance(stmt, WhileStmt):
            self._lower_while(stmt)
        elif isinstance(stmt, DoWhileStmt):
            self._lower_do_while(stmt)
        elif isinstance(stmt, ForStmt):
            self._lower_for(stmt)
        elif isinstance(stmt, ReturnStmt):
            self._lower_return(stmt)
        elif isinstance(stmt, BreakStmt):
            if not self.loop_stack:
                raise SemanticError("break outside loop", stmt.location)
            self._branch_to(self.loop_stack[-1].break_label)
        elif isinstance(stmt, ContinueStmt):
            if not self.loop_stack:
                raise SemanticError("continue outside loop", stmt.location)
            self._branch_to(self.loop_stack[-1].continue_label)
        else:  # pragma: no cover
            raise AssertionError(f"unhandled statement {type(stmt).__name__}")

    def _lower_decl(self, stmt: DeclStmt) -> None:
        self.cfg.add_variable(
            VariableInfo(stmt.name, stmt.decl_type, is_const=stmt.is_const)
        )
        if stmt.init is not None:
            value = self._lower_expr(stmt.init)
            element = (
                stmt.decl_type
                if isinstance(stmt.decl_type, Type)
                else stmt.decl_type.element
            )
            self._emit(
                Instruction(
                    Opcode.COPY,
                    dest=VarRef(stmt.name, element),
                    operands=(value,),
                    result_type=element,
                    location=stmt.location,
                )
            )

    def _lower_assign(self, stmt: AssignStmt) -> None:
        value = self._lower_expr(stmt.value)
        target = stmt.target
        if isinstance(target, NameRef):
            info = self._variable(target.name)
            self._emit(
                Instruction(
                    Opcode.COPY,
                    dest=VarRef(target.name, info.element_type),
                    operands=(value,),
                    result_type=info.element_type,
                    location=stmt.location,
                )
            )
        elif isinstance(target, ArrayRef):
            info = self._variable(target.name)
            assert isinstance(info.var_type, ArrayType)
            index = self._lower_linear_index(target, info.var_type.dimensions)
            base = ArrayBase(
                target.name,
                info.element_type,
                local=not (info.is_global or info.is_param),
            )
            self._emit(
                Instruction(
                    Opcode.STORE,
                    operands=(base, index, value),
                    result_type=info.element_type,
                    location=stmt.location,
                )
            )
        else:  # pragma: no cover - parser guarantees lvalues
            raise SemanticError("invalid assignment target", stmt.location)

    def _lower_if(self, stmt: IfStmt) -> None:
        cond = self._lower_expr(stmt.cond)
        then_block = self.cfg.new_block("then")
        join_block = self.cfg.new_block("join")
        else_block = (
            self.cfg.new_block("else") if stmt.otherwise is not None else join_block
        )
        self._emit(
            Instruction(
                Opcode.CBR,
                operands=(cond,),
                targets=(then_block.label, else_block.label),
                location=stmt.location,
            )
        )
        self.current = then_block
        self._lower_statement(stmt.then)
        self._branch_to(join_block.label)
        if stmt.otherwise is not None:
            self.current = else_block
            self._lower_statement(stmt.otherwise)
            self._branch_to(join_block.label)
        self.current = join_block

    def _lower_condition_branch(
        self,
        cond_expr: Expr | None,
        body_label: str,
        exit_label: str,
        location: SourceLocation,
    ) -> None:
        if cond_expr is None:
            self._branch_to(body_label)
            return
        cond = self._lower_expr(cond_expr)
        self._emit(
            Instruction(
                Opcode.CBR,
                operands=(cond,),
                targets=(body_label, exit_label),
                location=location,
            )
        )

    def _lower_while(self, stmt: WhileStmt) -> None:
        header = self.cfg.new_block("while_header")
        body = self.cfg.new_block("while_body")
        exit_block = self.cfg.new_block("while_exit")
        self._branch_to(header.label)
        self.current = header
        self._lower_condition_branch(
            stmt.cond, body.label, exit_block.label, stmt.location
        )
        self.loop_stack.append(_LoopContext(exit_block.label, header.label))
        self.current = body
        self._lower_statement(stmt.body)
        self._branch_to(header.label)
        self.loop_stack.pop()
        self.current = exit_block

    def _lower_do_while(self, stmt: DoWhileStmt) -> None:
        body = self.cfg.new_block("do_body")
        latch = self.cfg.new_block("do_latch")
        exit_block = self.cfg.new_block("do_exit")
        self._branch_to(body.label)
        self.loop_stack.append(_LoopContext(exit_block.label, latch.label))
        self.current = body
        self._lower_statement(stmt.body)
        self._branch_to(latch.label)
        self.loop_stack.pop()
        self.current = latch
        self._lower_condition_branch(
            stmt.cond, body.label, exit_block.label, stmt.location
        )
        self.current = exit_block

    def _lower_for(self, stmt: ForStmt) -> None:
        if stmt.init is not None:
            self._lower_statement(stmt.init)
        header = self.cfg.new_block("for_header")
        body = self.cfg.new_block("for_body")
        step = self.cfg.new_block("for_step")
        exit_block = self.cfg.new_block("for_exit")
        self._branch_to(header.label)
        self.current = header
        self._lower_condition_branch(
            stmt.cond, body.label, exit_block.label, stmt.location
        )
        self.loop_stack.append(_LoopContext(exit_block.label, step.label))
        self.current = body
        self._lower_statement(stmt.body)
        self._branch_to(step.label)
        self.loop_stack.pop()
        self.current = step
        if stmt.step is not None:
            self._lower_statement(stmt.step)
        self._branch_to(header.label)
        self.current = exit_block

    def _lower_return(self, stmt: ReturnStmt) -> None:
        operands: tuple = ()
        if stmt.value is not None:
            operands = (self._lower_expr(stmt.value),)
        self._emit(Instruction(Opcode.RET, operands=operands, location=stmt.location))

    # ------------------------------------------------------------------
    # Driver
    # ------------------------------------------------------------------
    def lower(self) -> ControlFlowGraph:
        self._start_block("entry")
        self._lower_statement(self.function.body)
        # Close any open fall-through path with an implicit return.
        block = self.current
        if block is not None and not block.is_terminated:
            if self.function.return_type is Type.VOID:
                block.append(Instruction(Opcode.RET))
            else:
                block.append(
                    Instruction(Opcode.RET, operands=(Const(0),))
                )
        self.cfg.remove_unreachable_blocks()
        self.cfg.verify()
        return self.cfg


def lower_function(function: FunctionDecl, program: Program) -> ControlFlowGraph:
    """Lower one function of ``program`` to its CFG."""
    return FunctionLowerer(function, program).lower()


def lower_program(program: Program) -> dict[str, ControlFlowGraph]:
    """Lower every function; returns a name -> CFG mapping."""
    return {
        function.name: lower_function(function, program)
        for function in program.functions
    }
