"""Compiler mid-end: three-address IR, CFGs, DFGs and the program CDFG.

This subpackage is the substrate the paper obtained from SUIF2/MachineSUIF:
it turns the checked AST into the Control/Data Flow Graph representation
that the analysis, mapping and partitioning stages consume.
"""

from .basicblock import BasicBlock
from .cdfg import CDFG, BlockKey, build_cdfg, cdfg_from_source
from .cfg import ControlFlowGraph, VariableInfo
from .dfg import DataFlowGraph, DFGNode, DFGStatistics
from .dominators import DominatorTree, compute_dominators
from .loops import LoopForest, NaturalLoop, find_loops
from .lowering import FunctionLowerer, lower_function, lower_program
from .operations import (
    ArrayBase,
    BINARY_OPCODES,
    Const,
    Instruction,
    INTRINSIC_OPCODES,
    OpClass,
    Opcode,
    Operand,
    Temp,
    TempFactory,
    Value,
    VarRef,
)
from .opsemantics import FOLDABLE_OPCODES, evaluate_opcode
from .passes import (
    eliminate_dead_code_in_block,
    fold_constants_in_block,
    optimize_cdfg,
    optimize_cfg,
    propagate_copies_in_block,
    run_block_passes,
)

__all__ = [
    "ArrayBase",
    "BasicBlock",
    "BINARY_OPCODES",
    "BlockKey",
    "CDFG",
    "Const",
    "ControlFlowGraph",
    "DataFlowGraph",
    "DFGNode",
    "DFGStatistics",
    "DominatorTree",
    "FOLDABLE_OPCODES",
    "FunctionLowerer",
    "Instruction",
    "INTRINSIC_OPCODES",
    "LoopForest",
    "NaturalLoop",
    "OpClass",
    "Opcode",
    "Operand",
    "Temp",
    "TempFactory",
    "Value",
    "VariableInfo",
    "VarRef",
    "build_cdfg",
    "cdfg_from_source",
    "compute_dominators",
    "eliminate_dead_code_in_block",
    "evaluate_opcode",
    "find_loops",
    "fold_constants_in_block",
    "lower_function",
    "lower_program",
    "optimize_cdfg",
    "optimize_cfg",
    "propagate_copies_in_block",
    "run_block_passes",
]
