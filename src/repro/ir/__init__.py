"""Compiler mid-end: three-address IR, CFGs, DFGs and the program CDFG.

This subpackage is the substrate the paper obtained from SUIF2/MachineSUIF:
it turns the checked AST into the Control/Data Flow Graph representation
that the analysis, mapping and partitioning stages consume.
"""

from .basicblock import BasicBlock
from .cdfg import CDFG, BlockKey, build_cdfg, cdfg_from_source
from .cfg import ControlFlowGraph, VariableInfo
from .dfg import DataFlowGraph, DFGNode, DFGStatistics
from .dominators import DominatorTree, compute_dominators
from .loops import LoopForest, NaturalLoop, find_loops
from .lowering import FunctionLowerer, lower_function, lower_program
from .operations import (
    ArrayBase,
    BINARY_OPCODES,
    Const,
    Instruction,
    INTRINSIC_OPCODES,
    OpClass,
    Opcode,
    Operand,
    Temp,
    TempFactory,
    Value,
    VarRef,
)
from .dataflow import (
    DataflowAnalysis,
    DataflowResult,
    DefiniteAssignment,
    LivenessAnalysis,
    ReachingDefinitions,
    live_variable_sets,
    reaching_definition_sets,
)
from .opsemantics import FOLDABLE_OPCODES, evaluate_opcode
from .passes import (
    PASS_TOTAL_KEYS,
    eliminate_dead_code_global,
    eliminate_dead_code_in_block,
    eliminate_unreachable_blocks,
    fold_constants_in_block,
    optimize_cdfg,
    optimize_cfg,
    propagate_copies_in_block,
    run_block_passes,
    simplify_constant_branches,
)
from .verify import (
    Diagnostic,
    OPCODE_SHAPES,
    VerificationError,
    VerificationReport,
    assert_verified,
    sanitizer_enabled,
    set_sanitizer,
    verify_cdfg,
    verify_cfg,
)

__all__ = [
    "ArrayBase",
    "BasicBlock",
    "BINARY_OPCODES",
    "BlockKey",
    "CDFG",
    "Const",
    "ControlFlowGraph",
    "DataflowAnalysis",
    "DataflowResult",
    "DataFlowGraph",
    "DefiniteAssignment",
    "DFGNode",
    "DFGStatistics",
    "Diagnostic",
    "DominatorTree",
    "FOLDABLE_OPCODES",
    "FunctionLowerer",
    "Instruction",
    "INTRINSIC_OPCODES",
    "LivenessAnalysis",
    "LoopForest",
    "NaturalLoop",
    "OpClass",
    "Opcode",
    "OPCODE_SHAPES",
    "Operand",
    "PASS_TOTAL_KEYS",
    "ReachingDefinitions",
    "Temp",
    "TempFactory",
    "Value",
    "VariableInfo",
    "VarRef",
    "VerificationError",
    "VerificationReport",
    "assert_verified",
    "build_cdfg",
    "cdfg_from_source",
    "compute_dominators",
    "eliminate_dead_code_global",
    "eliminate_dead_code_in_block",
    "eliminate_unreachable_blocks",
    "evaluate_opcode",
    "find_loops",
    "fold_constants_in_block",
    "live_variable_sets",
    "lower_function",
    "lower_program",
    "optimize_cdfg",
    "optimize_cfg",
    "propagate_copies_in_block",
    "reaching_definition_sets",
    "run_block_passes",
    "sanitizer_enabled",
    "set_sanitizer",
    "simplify_constant_branches",
    "verify_cdfg",
    "verify_cfg",
]
