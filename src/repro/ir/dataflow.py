"""Global dataflow framework: worklist solvers over per-block lattices.

The block-local passes in :mod:`repro.ir.passes` only ever reason about
one :class:`~repro.ir.basicblock.BasicBlock` at a time.  This module adds
the whole-CFG layer: a generic iterative worklist solver over powerset
lattices (forward or backward, may or must), plus the two classic
analyses the global passes and the verifier consume:

* :class:`LivenessAnalysis` — backward may-analysis over scalar variable
  names, used by liveness-based global dead-code elimination and to
  cross-check the per-block DFG live sets;
* :class:`ReachingDefinitions` — forward may-analysis over definition
  sites, used for diagnostics and analysis reports;
* :class:`DefiniteAssignment` — forward must-analysis over "assigned on
  every path" variable names, used by the verifier's def-before-use
  check (a use is rejected unless a definition reaches it along *all*
  paths from the entry).

Iteration order follows :meth:`ControlFlowGraph.reverse_post_order`
(reverse post-order for forward problems, its reverse for backward
ones), which reaches the fixed point in a small number of sweeps for
reducible CFGs — the only kind the structured mini-C frontend emits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from .basicblock import BasicBlock
from .cfg import ControlFlowGraph
from .operations import Opcode, Temp, VarRef


@dataclass
class DataflowResult:
    """Fixed-point ``in``/``out`` sets per block label."""

    in_sets: dict[str, frozenset] = field(default_factory=dict)
    out_sets: dict[str, frozenset] = field(default_factory=dict)
    iterations: int = 0

    def live_in(self, label: str) -> frozenset:
        return self.in_sets[label]

    def live_out(self, label: str) -> frozenset:
        return self.out_sets[label]


class DataflowAnalysis:
    """A gen/kill dataflow problem over a powerset lattice.

    Subclasses define the direction, the meet operator (``may`` joins
    with union, ``must`` with intersection), the boundary value and the
    per-block ``gen``/``kill`` sets; :meth:`solve` runs the worklist to a
    fixed point.  The default transfer function is the standard
    ``gen ∪ (x − kill)``; override :meth:`transfer` for non-gen/kill
    problems.
    """

    #: "forward" propagates entry→exit, "backward" exit→entry.
    direction = "forward"
    #: "may" (union meet) or "must" (intersection meet).
    mode = "may"

    def boundary(self, cfg: ControlFlowGraph) -> frozenset:
        """Value at the CFG boundary (entry or exit blocks)."""
        return frozenset()

    def universe(self, cfg: ControlFlowGraph) -> frozenset:
        """Top of a must-analysis lattice (ignored for may-analyses)."""
        return frozenset()

    def gen(self, block: BasicBlock) -> frozenset:
        raise NotImplementedError

    def kill(self, block: BasicBlock) -> frozenset:
        raise NotImplementedError

    def transfer(self, block: BasicBlock, values: frozenset) -> frozenset:
        return self.gen(block) | (values - self.kill(block))

    # ------------------------------------------------------------------
    # Solver
    # ------------------------------------------------------------------
    def solve(self, cfg: ControlFlowGraph, max_iterations: int = 64) -> DataflowResult:
        """Iterate to a fixed point; returns per-block in/out sets.

        ``in``/``out`` are always oriented in *execution* order: for a
        backward analysis ``in_sets[b]`` is the value at the top of the
        block and ``out_sets[b]`` the value at the bottom.
        """
        order = list(cfg.reverse_post_order())
        labels = set(order)
        forward = self.direction == "forward"
        meet_union = self.mode == "may"
        boundary = frozenset(self.boundary(cfg))
        top = frozenset(self.universe(cfg))
        initial = frozenset() if meet_union else top

        preds: dict[str, list[str]] = {label: [] for label in order}
        succs: dict[str, list[str]] = {label: [] for label in order}
        for label in order:
            for succ in cfg.block(label).successor_labels():
                if succ in labels:
                    succs[label].append(succ)
                    preds[succ].append(label)

        before = {label: initial for label in order}
        after = {label: initial for label in order}

        sweep = order if forward else list(reversed(order))
        sources = preds if forward else succs
        iterations = 0
        changed = True
        while changed and iterations < max_iterations:
            changed = False
            iterations += 1
            for label in sweep:
                block = cfg.block(label)
                incoming = sources[label]
                is_boundary = (
                    (forward and label == cfg.entry_label)
                    or (not forward and self._is_exit(block))
                )
                merged: frozenset | None = None
                for src in incoming:
                    contribution = after[src] if forward else before[src]
                    if merged is None:
                        merged = contribution
                    elif meet_union:
                        merged = merged | contribution
                    else:
                        merged = merged & contribution
                if merged is None:
                    # No sources in the analysis direction: the boundary
                    # value at true boundaries, bottom/top elsewhere.
                    value = boundary if is_boundary else initial
                elif is_boundary:
                    value = (
                        merged | boundary if meet_union else merged & boundary
                    )
                else:
                    value = merged
                transferred = self.transfer(block, value)
                if forward:
                    if value != before[label] or transferred != after[label]:
                        before[label], after[label] = value, transferred
                        changed = True
                else:
                    if value != after[label] or transferred != before[label]:
                        after[label], before[label] = value, transferred
                        changed = True
        return DataflowResult(
            in_sets=dict(before), out_sets=dict(after), iterations=iterations
        )

    @staticmethod
    def _is_exit(block: BasicBlock) -> bool:
        terminator = block.terminator
        return terminator is not None and terminator.opcode is Opcode.RET


def _scalar_globals(cfg: ControlFlowGraph) -> frozenset[str]:
    """Names of global scalars visible in ``cfg`` (they outlive it)."""
    return frozenset(
        name
        for name, info in cfg.variables.items()
        if info.is_global and not info.is_array
    )


class LivenessAnalysis(DataflowAnalysis):
    """Backward may-analysis: which scalar names may be read later.

    The value domain is scalar :class:`VarRef` names (temps never cross
    block boundaries, so their liveness stays block-local and is handled
    by the local DCE pass).  Global scalars are live at every exit and
    across every CALL — a callee may read them.
    """

    direction = "backward"
    mode = "may"

    def boundary(self, cfg: ControlFlowGraph) -> frozenset:
        return _scalar_globals(cfg)

    def gen(self, block: BasicBlock) -> frozenset:
        upward_exposed: set[str] = set()
        killed: set[str] = set()
        globals_ = self._globals
        for instruction in block.instructions:
            for operand in instruction.operands:
                if isinstance(operand, VarRef) and operand.name not in killed:
                    upward_exposed.add(operand.name)
            if instruction.opcode is Opcode.CALL:
                upward_exposed |= globals_ - killed
            if isinstance(instruction.dest, VarRef):
                killed.add(instruction.dest.name)
        return frozenset(upward_exposed)

    def kill(self, block: BasicBlock) -> frozenset:
        return frozenset(
            instruction.dest.name
            for instruction in block.instructions
            if isinstance(instruction.dest, VarRef)
        )

    def solve(self, cfg: ControlFlowGraph, max_iterations: int = 64) -> DataflowResult:
        self._globals = _scalar_globals(cfg)
        return super().solve(cfg, max_iterations)


#: One scalar definition site: (variable name, block label, index).
DefSite = tuple[str, str, int]


class ReachingDefinitions(DataflowAnalysis):
    """Forward may-analysis over scalar definition sites.

    A definition is any instruction whose ``dest`` is a :class:`VarRef`;
    parameters and globals carry a synthetic boundary definition
    ``(name, "<entry>", -1)`` since they are defined before the function
    body runs.
    """

    direction = "forward"
    mode = "may"

    def boundary(self, cfg: ControlFlowGraph) -> frozenset:
        defined_at_entry = [
            name
            for name, info in cfg.variables.items()
            if not info.is_array and (info.is_param or info.is_global)
        ]
        return frozenset((name, "<entry>", -1) for name in defined_at_entry)

    def gen(self, block: BasicBlock) -> frozenset:
        last_def: dict[str, DefSite] = {}
        for index, instruction in enumerate(block.instructions):
            if isinstance(instruction.dest, VarRef):
                name = instruction.dest.name
                last_def[name] = (name, block.label, index)
        return frozenset(last_def.values())

    def kill(self, block: BasicBlock) -> frozenset:
        written = {
            instruction.dest.name
            for instruction in block.instructions
            if isinstance(instruction.dest, VarRef)
        }
        return frozenset(
            site for site in self._all_defs if site[0] in written
        ) - self.gen(block)

    def solve(self, cfg: ControlFlowGraph, max_iterations: int = 64) -> DataflowResult:
        all_defs: set[DefSite] = set(self.boundary(cfg))
        for block in cfg:
            for index, instruction in enumerate(block.instructions):
                if isinstance(instruction.dest, VarRef):
                    all_defs.add(
                        (instruction.dest.name, block.label, index)
                    )
        self._all_defs = frozenset(all_defs)
        return super().solve(cfg, max_iterations)


class DefiniteAssignment(DataflowAnalysis):
    """Forward must-analysis: names assigned along *every* path.

    ``in_sets[b]`` is the set of scalar names guaranteed to have a value
    when ``b`` is entered.  Parameters and globals are assigned at the
    boundary; a local joins the set once every path to the block writes
    it.  The verifier walks each block with this in-set to reject
    uses of possibly-uninitialized locals.
    """

    direction = "forward"
    mode = "must"

    def _assigned_at_entry(self, cfg: ControlFlowGraph) -> frozenset:
        return frozenset(
            name
            for name, info in cfg.variables.items()
            if not info.is_array and (info.is_param or info.is_global)
        )

    def boundary(self, cfg: ControlFlowGraph) -> frozenset:
        return self._assigned_at_entry(cfg)

    def universe(self, cfg: ControlFlowGraph) -> frozenset:
        return frozenset(
            name for name, info in cfg.variables.items() if not info.is_array
        )

    def gen(self, block: BasicBlock) -> frozenset:
        return frozenset(
            instruction.dest.name
            for instruction in block.instructions
            if isinstance(instruction.dest, VarRef)
        )

    def kill(self, block: BasicBlock) -> frozenset:
        return frozenset()


def live_variable_sets(cfg: ControlFlowGraph) -> DataflowResult:
    """Convenience wrapper: solved liveness for one CFG."""
    return LivenessAnalysis().solve(cfg)


def reaching_definition_sets(cfg: ControlFlowGraph) -> DataflowResult:
    """Convenience wrapper: solved reaching definitions for one CFG."""
    return ReachingDefinitions().solve(cfg)


def upward_exposed_temp_uses(block: BasicBlock) -> Iterable[Temp]:
    """Temps read before any definition inside ``block``.

    Temps are block-local by construction, so any upward-exposed temp
    use is a def-before-use violation; the verifier reports them.
    """
    defined: set[Temp] = set()
    for instruction in block.instructions:
        for operand in instruction.operands:
            if isinstance(operand, Temp) and operand not in defined:
                yield operand
        if isinstance(instruction.dest, Temp):
            defined.add(instruction.dest)
