"""Command-line entry point: ``python -m repro``.

Three subcommands wrap the existing factories so the common scenarios
run without writing a script:

``partition``
    One workload on one platform against one timing constraint
    (absolute ``--constraint`` or relative ``--fraction``), with any
    registered search algorithm::

        python -m repro partition --workload ofdm --fraction 0.5
        python -m repro partition --workload synthetic:40:seed=3 \\
            --algorithm annealing:seed=7 --constraint 250000 --pareto

``explore``
    A (workload × platform × constraint × algorithm) grid fanned out
    over worker processes, with optional CSV/JSON export::

        python -m repro explore --workloads ofdm jpeg \\
            --afpga 1500 5000 --cgcs 2 3 --fractions 0.9 0.5 \\
            --algorithms greedy multi_start --csv grid.csv

``suite``
    The named scenario suite with its persistent result store,
    regression gating and longitudinal analytics (``suite list``,
    ``suite run``, ``suite compare``, ``suite history``,
    ``suite trends``)::

        python -m repro suite run --db results.sqlite --label nightly
        python -m repro suite compare \\
            --baseline benchmarks/suite_baseline.json --cycle-threshold 20
        python -m repro suite history ofdm-greedy --db results.sqlite
        python -m repro suite trends --db results.sqlite \\
            --html trends.html --csv trends.csv

``serve``
    The long-running partitioning daemon: JSON jobs over HTTP, batched
    by (workload × platform) onto shared priced cost tables, with
    bounded-queue backpressure and graceful SIGTERM drain::

        python -m repro serve --workers 2 --port 8023
        curl -d '{"workload": "ofdm", "fraction": 0.5}' \\
            http://127.0.0.1:8023/jobs

``verify``
    Static IR sanitization: lower each workload's program to its CDFG,
    run the structural/dataflow verifier, and print a diagnostic
    report (``--all`` covers every registered suite scenario)::

        python -m repro verify ofdm-measured minic:0
        python -m repro verify --all

Workload syntax: ``ofdm`` | ``jpeg`` | ``ofdm-measured`` |
``jpeg-measured`` | ``filterbank`` | ``viterbi`` | ``minic:<seed>`` |
``synthetic:<blocks>``, each optionally followed by
``:key=value,...`` parameters.
Algorithm syntax: ``<name>[:key=value,...]`` with the
:class:`repro.search.AlgorithmSpec` factory parameters.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Callable

from .explore import DesignSpace, WorkloadSpec, explore
from .partition import EngineConfig
from .platform import paper_platform
from .reporting import (
    StepThresholds,
    compute_trends,
    format_grid,
    render_exploration,
    render_pareto,
    render_suite,
    render_suite_diff,
    render_trends,
    write_exploration_csv,
    write_exploration_json,
    write_suite_csv,
    write_suite_json,
    write_trends_csv,
    write_trends_html,
)
from .search import AlgorithmSpec, make_partitioner
from .specs import algorithm_spec_from_text, workload_spec_from_text
from .suite import (
    RegressionThresholds,
    ResultStore,
    SuiteRun,
    compare_runs,
    read_run_json,
    run_suite,
    scenario_names,
    select_scenarios,
)


def parse_workload(text: str) -> WorkloadSpec:
    """The shared spec syntax (:mod:`repro.specs`) as an argparse type."""
    try:
        return workload_spec_from_text(text)
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error)) from None


def parse_algorithm(text: str) -> AlgorithmSpec:
    try:
        return algorithm_spec_from_text(text)
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error)) from None


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Hardware/software partitioning for hybrid reconfigurable "
            "platforms (conf_date_GalanisMTSG04 reproduction)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    part = sub.add_parser(
        "partition", help="partition one workload on one platform"
    )
    part.add_argument(
        "--workload", type=parse_workload, required=True,
        help="ofdm | jpeg | *-measured | synthetic:<blocks>[:key=value,...]",
    )
    part.add_argument("--afpga", type=int, default=1500)
    part.add_argument("--cgcs", type=int, default=2)
    part.add_argument("--clock-ratio", type=int, default=3)
    part.add_argument("--reconfig-cycles", type=int, default=20)
    group = part.add_mutually_exclusive_group(required=True)
    group.add_argument(
        "--constraint", type=int, help="timing constraint in FPGA cycles"
    )
    group.add_argument(
        "--fraction", type=float,
        help="constraint as a fraction of the all-FPGA cycle count",
    )
    part.add_argument(
        "--algorithm", type=parse_algorithm,
        default=AlgorithmSpec.greedy(),
        help="greedy | exhaustive | multi_start | annealing[:key=value,...]",
    )
    part.add_argument(
        "--max-kernels", type=int, default=None,
        help="move budget (EngineConfig.max_kernels_moved)",
    )
    part.add_argument(
        "--substrate", choices=("packed", "object"), default="packed",
        help="pricing substrate: packed cost tables (fast, default) or "
        "the object-model differential reference",
    )
    part.add_argument(
        "--pareto", action="store_true",
        help="also print the Pareto front of visited configurations",
    )
    part.add_argument(
        "--shards", type=int, default=None,
        help="split the exhaustive Gray-code walk into this many worker "
        "segments (exhaustive algorithm, packed substrate only; results "
        "are bit-identical to the serial walk)",
    )
    part.add_argument(
        "--prune", action="store_true",
        help="exact branch-and-bound instead of full enumeration "
        "(exhaustive algorithm only; certified-identical optimum and "
        "Pareto front)",
    )
    part.add_argument(
        "--search-workers", type=int, default=None,
        help="process cap for sharded exact search (default: machine "
        "cores; 1 forces an in-process run)",
    )
    part.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget for the search; on expiry the best "
        "configuration found so far is returned, marked uncertified",
    )

    expl = sub.add_parser(
        "explore", help="sweep a (workload x platform x constraint x "
        "algorithm) grid",
    )
    expl.add_argument(
        "--workloads", type=parse_workload, nargs="+", required=True
    )
    expl.add_argument("--afpga", type=int, nargs="+", default=[1500, 5000])
    expl.add_argument("--cgcs", type=int, nargs="+", default=[2, 3])
    expl.add_argument(
        "--fractions", type=float, nargs="+", default=[0.9, 0.75, 0.5]
    )
    expl.add_argument(
        "--algorithms", type=parse_algorithm, nargs="+",
        default=[AlgorithmSpec.greedy()],
    )
    expl.add_argument(
        "--substrate", choices=("packed", "object"), default="packed",
        help="pricing substrate for every grid cell (default packed)",
    )
    expl.add_argument("--workers", type=int, default=1)
    expl.add_argument("--csv", help="write the grid as CSV to this path")
    expl.add_argument("--json", help="write the full report as JSON")

    suite = sub.add_parser(
        "suite", help="named scenario suite: run, persist, diff, gate"
    )
    suite_sub = suite.add_subparsers(dest="suite_command", required=True)

    slist = suite_sub.add_parser(
        "list", help="list registered scenarios (or recorded runs)"
    )
    slist.add_argument("--tag", help="only scenarios carrying this tag")
    slist.add_argument(
        "--db", help="list runs recorded in this SQLite store instead"
    )

    srun = suite_sub.add_parser(
        "run", help="run scenarios, print the table, persist results"
    )
    srun.add_argument(
        "--scenarios", nargs="+", metavar="NAME",
        help="subset of scenario names (default: the whole registry)",
    )
    srun.add_argument("--tag", help="only scenarios carrying this tag")
    srun.add_argument(
        "--db", help="record the run into this SQLite result store"
    )
    srun.add_argument(
        "--label", default="", help="label stored with the run"
    )
    srun.add_argument("--workers", type=int, default=1)
    srun.add_argument(
        "--json", help="write the run as baseline-format JSON"
    )
    srun.add_argument("--csv", help="write the per-scenario results as CSV")

    scmp = suite_sub.add_parser(
        "compare",
        help="diff a candidate run against a baseline; exit 1 on "
        "regression",
    )
    scmp.add_argument(
        "--baseline", required=True, metavar="REF",
        help="baseline: a suite-run JSON file, or (with --db) a run id "
        "or label",
    )
    scmp.add_argument(
        "--candidate", metavar="REF",
        help="candidate: same forms as --baseline; omitted = run the "
        "suite now",
    )
    scmp.add_argument("--db", help="SQLite store run references resolve in")
    scmp.add_argument(
        "--scenarios", nargs="+", metavar="NAME",
        help="scenario subset when the candidate is run fresh",
    )
    scmp.add_argument("--tag", help="scenario tag filter for a fresh run")
    scmp.add_argument("--workers", type=int, default=1)
    scmp.add_argument(
        "--cycle-threshold", type=float, default=20.0,
        help="fail on total-cycle growth beyond this percent "
        "(default 20)",
    )
    scmp.add_argument(
        "--wall-threshold", type=float, default=None,
        help="also fail on wall-time growth beyond this percent "
        "(off by default: wall times are machine-dependent)",
    )
    scmp.add_argument(
        "--min-wall", type=float, default=0.25,
        help="wall gating noise floor in seconds (default 0.25)",
    )
    scmp.add_argument(
        "--throughput-threshold", type=float, default=None,
        help="also fail on configs_per_second drops beyond this percent "
        "(off by default: throughput is machine-dependent)",
    )
    scmp.add_argument(
        "--min-throughput", type=float, default=1000.0,
        help="throughput gating noise floor in configs/second "
        "(default 1000)",
    )
    scmp.add_argument(
        "--save-candidate",
        help="also write the candidate run as baseline-format JSON "
        "(baseline refresh)",
    )

    shist = suite_sub.add_parser(
        "history",
        help="one scenario's longitudinal metrics from the result store",
    )
    shist.add_argument("scenario", help="scenario name to trace")
    shist.add_argument(
        "--db", required=True, help="SQLite result store to read"
    )
    shist.add_argument("--csv", help="also write the history as CSV")

    strd = suite_sub.add_parser(
        "trends",
        help="longitudinal trends + first-step detection over recorded "
        "runs (informational: steps print but do not fail the command)",
    )
    strd.add_argument("--db", help="SQLite result store to analyze")
    strd.add_argument(
        "--runs", nargs="+", metavar="JSON",
        help="suite-run JSON files, oldest first, to analyze instead of "
        "--db (loaded into an ephemeral store)",
    )
    strd.add_argument(
        "--scenarios", nargs="+", metavar="NAME",
        help="scenario subset (default: every scenario with results)",
    )
    strd.add_argument("--html", help="write the HTML report artifact")
    strd.add_argument("--csv", help="write the per-run CSV artifact")
    strd.add_argument(
        "--cycle-step", type=float, default=10.0,
        help="flag total-cycle steps beyond this percent (default 10)",
    )
    strd.add_argument(
        "--wall-step", type=float, default=75.0,
        help="flag wall-time steps beyond this percent (default 75)",
    )
    strd.add_argument(
        "--throughput-step", type=float, default=60.0,
        help="flag configs/second drops beyond this percent (default 60)",
    )
    strd.add_argument(
        "--min-wall", type=float, default=0.05,
        help="wall step-detection noise floor in seconds (default 0.05)",
    )
    strd.add_argument(
        "--min-throughput", type=float, default=1000.0,
        help="throughput step-detection noise floor in configs/second "
        "(default 1000)",
    )

    srv = sub.add_parser(
        "serve",
        help="run the partitioning daemon (JSON jobs over HTTP)",
    )
    srv.add_argument(
        "--host", default="127.0.0.1",
        help="interface to bind (default 127.0.0.1)",
    )
    srv.add_argument(
        "--port", type=int, default=8023,
        help="TCP port to bind; 0 picks an ephemeral port (default 8023)",
    )
    srv.add_argument(
        "--workers", type=int, default=1,
        help="process fan-out per batch; 1 runs jobs in the dispatcher "
        "thread (default 1)",
    )
    srv.add_argument(
        "--queue-capacity", type=int, default=256,
        help="bounded job queue size; submissions beyond it get a "
        "retry-after rejection (default 256)",
    )
    srv.add_argument(
        "--batch-window", type=float, default=0.005,
        help="seconds the dispatcher waits for concurrent submissions "
        "to coalesce into one batch (default 0.005)",
    )
    srv.add_argument(
        "--cache-capacity", type=int, default=8,
        help="LRU capacity of the priced-table / workload caches "
        "(default 8)",
    )
    srv.add_argument(
        "--default-timeout", type=float, default=None,
        help="default per-job queue timeout in seconds (default: none)",
    )
    srv.add_argument(
        "--profile-cache-dir", default=None,
        help="on-disk profile cache directory for measured workloads",
    )
    srv.add_argument(
        "--task-retries", type=int, default=0,
        help="retries per failed job task before reporting the failure "
        "(default 0)",
    )
    srv.add_argument(
        "--retry-backoff", type=float, default=0.05,
        help="base seconds of the deterministic exponential backoff "
        "between retries (default 0.05)",
    )
    srv.add_argument(
        "--search-deadline", type=float, default=None,
        help="per-job wall-clock search budget in seconds; expired "
        "searches return best-so-far marked uncertified (default: none)",
    )
    srv.add_argument(
        "--breaker-threshold", type=int, default=0,
        help="consecutive infrastructure-failure groups per "
        "workload×platform pair before the circuit breaker opens; "
        "0 disables the breaker (default 0)",
    )
    srv.add_argument(
        "--breaker-cooldown", type=float, default=30.0,
        help="seconds an open circuit breaker rejects jobs before "
        "half-closing (default 30)",
    )
    srv.add_argument(
        "--degrade", action="store_true",
        help="when the search deadline truncates a non-greedy job, "
        "answer with a completed greedy run instead (reported as "
        "degraded) rather than an uncertified partial result",
    )
    srv.add_argument(
        "--drain-deadline", type=float, default=None,
        help="hard cap in seconds on the SIGTERM/shutdown drain; past "
        "it pending jobs are failed fast so a stuck job cannot wedge "
        "process exit (default: drain without limit)",
    )
    srv.add_argument(
        "--verbose", action="store_true",
        help="log every HTTP request",
    )

    ver = sub.add_parser(
        "verify",
        help="lower workloads to CDFGs and run the static IR verifier",
    )
    ver.add_argument(
        "workloads", type=parse_workload, nargs="*", metavar="WORKLOAD",
        help="workload specs to verify (same syntax as --workload)",
    )
    ver.add_argument(
        "--all", action="store_true",
        help="also verify every registered suite scenario workload plus "
        "the IR-backed application kinds (ofdm-measured, jpeg-measured, "
        "minic)",
    )
    ver.add_argument(
        "--no-optimize", action="store_true",
        help="verify the raw lowered IR instead of the optimized form",
    )
    ver.add_argument(
        "--stats", action="store_true",
        help="print per-function block/op/loop/liveness statistics",
    )
    return parser


def _export(writer: Callable[[], Path], what: str) -> bool:
    """Run one artifact write; report (not raise) filesystem errors."""
    try:
        print(f"wrote {writer()}")
    except OSError as error:
        print(f"error: cannot write {what}: {error}", file=sys.stderr)
        return False
    return True


def _open_store(path: str) -> ResultStore | None:
    """Open (or create) the SQLite store; report failures instead of
    crashing with an sqlite3 traceback."""
    import sqlite3

    try:
        return ResultStore(path)
    except (sqlite3.Error, OSError) as error:
        print(
            f"error: cannot open result store {path!r}: {error}",
            file=sys.stderr,
        )
        return None


def _cmd_partition(args: argparse.Namespace) -> int:
    try:
        workload = args.workload.build()
    except ValueError as error:
        print(
            f"error: cannot build workload "
            f"{args.workload.label!r}: {error}",
            file=sys.stderr,
        )
        return 2
    platform = paper_platform(
        args.afpga,
        args.cgcs,
        clock_ratio=args.clock_ratio,
        reconfig_cycles=args.reconfig_cycles,
    )
    algorithm = args.algorithm
    if args.shards is not None or args.prune:
        if algorithm.name != "exhaustive":
            print(
                "error: --shards/--prune apply to the exhaustive "
                f"algorithm only (got {algorithm.label!r})",
                file=sys.stderr,
            )
            return 2
        merged = dict(algorithm.params)
        if args.shards is not None:
            merged["shards"] = args.shards
        if args.prune:
            merged["prune"] = True
        algorithm = AlgorithmSpec(
            name="exhaustive", params=tuple(sorted(merged.items()))
        )
    config = EngineConfig(
        max_kernels_moved=args.max_kernels,
        substrate=args.substrate,
        search_workers=args.search_workers,
    )
    partitioner = make_partitioner(
        algorithm, workload, platform, config=config
    )
    constraint = args.constraint
    if constraint is None:
        if args.fraction <= 0:
            print("error: --fraction must be positive", file=sys.stderr)
            return 2
        constraint = max(1, round(partitioner.initial_cycles() * args.fraction))
    deadline = None
    if args.deadline is not None:
        if args.deadline <= 0:
            print("error: --deadline must be positive", file=sys.stderr)
            return 2
        from .faults import Deadline

        deadline = Deadline.after(args.deadline)
    result = partitioner.run(constraint, deadline=deadline)
    print(f"algorithm: {algorithm.label}")
    print(result.summary())
    if not result.certified:
        print(
            "warning: search deadline expired; result is the best "
            "configuration found so far (uncertified)",
            file=sys.stderr,
        )
    shard_outcomes = getattr(partitioner, "shard_outcomes", [])
    pruned = getattr(partitioner, "pruned_subtrees", 0)
    if shard_outcomes or pruned:
        print(
            f"exact search: {partitioner.visited_count} configurations "
            f"visited, {pruned} subtrees pruned"
        )
        for stats in shard_outcomes:
            print(
                f"  shard {stats['shard']:>2}: {stats['visits']} visits "
                f"in {stats['seconds']:.3f}s "
                f"({stats['configs_per_second']:.0f}/s, "
                f"{stats['pruned_subtrees']} pruned)"
            )
    for step in result.steps:
        marker = "met" if step.constraint_met else "   "
        print(
            f"  moved BB {step.moved_bb_id:>3}: total {step.total_cycles} "
            f"(fpga {step.fpga_cycles}, cgc {step.cgc_fpga_cycles}, "
            f"comm {step.comm_cycles}) {marker}"
        )
    if args.pareto:
        print("\nPareto front (cycles / kernels moved / CGC rows):")
        print(render_pareto(partitioner.pareto_front()))
    return 0


def _cmd_explore(args: argparse.Namespace) -> int:
    space = DesignSpace.grid(
        args.workloads,
        afpga_values=tuple(args.afpga),
        cgc_counts=tuple(args.cgcs),
        constraint_fractions=tuple(args.fractions),
        algorithms=tuple(args.algorithms),
    )
    try:
        report = explore(
            space,
            max_workers=args.workers,
            engine_config=EngineConfig(substrate=args.substrate),
        )
    except ValueError as error:
        print(f"error: cannot explore the grid: {error}", file=sys.stderr)
        return 2
    print(render_exploration(report))
    if len(report.algorithms()) > 1:
        # Compared per workload: absolute cycle counts are only
        # commensurable within one application.
        print("\nBest point per algorithm:")
        for workload in report.workload_names():
            print(f"  {workload}:")
            for label, best in report.best_per_algorithm(workload).items():
                print(
                    f"    {label}: {best.final_cycles} cycles "
                    f"(A={best.afpga}, {best.cgc_count} CGCs, "
                    f"{best.kernels_moved} moved)"
                )
    ok = True
    if args.csv:
        ok &= _export(
            lambda: write_exploration_csv(report.results, args.csv),
            "exploration CSV",
        )
    if args.json:
        ok &= _export(
            lambda: write_exploration_json(report, args.json),
            "exploration JSON",
        )
    return 0 if ok else 2


def _selected_scenarios(args: argparse.Namespace):
    try:
        scenarios = select_scenarios(args.scenarios, args.tag)
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return None
    if not scenarios:
        print(
            "error: no scenarios selected "
            f"(registry: {', '.join(scenario_names())})",
            file=sys.stderr,
        )
        return None
    return scenarios


def _cmd_suite_list(args: argparse.Namespace) -> int:
    if args.db:
        store = _open_store(args.db)
        if store is None:
            return 2
        with store:
            runs = store.runs_summary()
        if not runs:
            print(f"no runs recorded in {args.db}")
            return 0
        for entry in runs:
            label = f" [{entry['label']}]" if entry["label"] else ""
            print(
                f"run {entry['run_id']}{label}: {entry['scenarios']} "
                f"scenario(s) @ {entry['fingerprint']} "
                f"({entry['created_at']}, {entry['elapsed_seconds']:.2f}s)"
            )
        return 0
    scenarios = select_scenarios(None, args.tag)
    for scenario in scenarios:
        tags = f"  [{', '.join(scenario.tags)}]" if scenario.tags else ""
        print(f"{scenario.name}: {scenario.describe()}{tags}")
    print(f"{len(scenarios)} scenario(s)")
    return 0


def _cmd_suite_run(args: argparse.Namespace) -> int:
    scenarios = _selected_scenarios(args)
    if scenarios is None:
        return 2
    store = None
    if args.db:
        store = _open_store(args.db)
        if store is None:
            return 2
    try:
        run = run_suite(
            scenarios,
            store=store,
            label=args.label,
            max_workers=args.workers,
        )
    finally:
        if store is not None:
            store.close()
    print(render_suite(run))
    if args.db:
        print(f"recorded as run {run.run_id} in {args.db}")
    ok = True
    if args.json:
        ok &= _export(lambda: write_suite_json(run, args.json), "suite JSON")
    if args.csv:
        ok &= _export(
            lambda: write_suite_csv(run.results, args.csv), "suite CSV"
        )
    return 0 if ok else 2


def _resolve_run(
    ref: str, store: ResultStore | None, role: str
) -> SuiteRun | None:
    """A run reference: a JSON file path, or a store run id / label."""
    path = Path(ref)
    if path.is_file():
        try:
            return read_run_json(path)
        except (ValueError, KeyError) as error:
            print(
                f"error: {role} {ref!r} is not a suite-run JSON file "
                f"({error})",
                file=sys.stderr,
            )
            return None
    if store is None:
        print(
            f"error: {role} {ref!r} is not a file and no --db was given",
            file=sys.stderr,
        )
        return None
    # Labels win over run ids so a digit-only label stays reachable;
    # ids are only generated, labels are what users chose.
    run = store.load_latest(label=ref)
    if run is not None:
        return run
    if ref.isdigit():
        try:
            return store.load_run(int(ref))
        except KeyError:
            print(
                f"error: no run {ref} (as label or id) in the result "
                "store",
                file=sys.stderr,
            )
            return None
    print(
        f"error: no run labelled {ref!r} in the result store",
        file=sys.stderr,
    )
    return None


def _cmd_suite_compare(args: argparse.Namespace) -> int:
    # Validate thresholds first: a bad flag must not cost a suite run.
    try:
        thresholds = RegressionThresholds(
            cycle_percent=args.cycle_threshold,
            wall_percent=args.wall_threshold,
            min_wall_seconds=args.min_wall,
            throughput_percent=args.throughput_threshold,
            min_configs_per_second=args.min_throughput,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    store = None
    if args.db:
        store = _open_store(args.db)
        if store is None:
            return 2
    try:
        baseline = _resolve_run(args.baseline, store, "baseline")
        if baseline is None:
            return 2
        if args.candidate is not None:
            candidate = _resolve_run(args.candidate, store, "candidate")
            if candidate is None:
                return 2
        else:
            scenarios = _selected_scenarios(args)
            if scenarios is None:
                return 2
            candidate = run_suite(scenarios, max_workers=args.workers)
    finally:
        if store is not None:
            store.close()
    comparison = compare_runs(baseline, candidate, thresholds)
    print(render_suite_diff(comparison))
    if args.save_candidate and not _export(
        lambda: write_suite_json(candidate, args.save_candidate),
        "candidate JSON",
    ):
        return 2
    return 1 if comparison.has_regressions else 0


def _cmd_suite_history(args: argparse.Namespace) -> int:
    store = _open_store(args.db)
    if store is None:
        return 2
    with store:
        history = store.scenario_history(args.scenario)
    if not history:
        print(
            f"error: no recorded results for scenario "
            f"{args.scenario!r} in {args.db}",
            file=sys.stderr,
        )
        return 2
    headers = ["run", "when", "cycles", "wall s", "cfg/s"]
    rows = [
        [
            str(run_id),
            created_at or "-",  # legacy runs predate the timestamp fix
            str(cycles),
            f"{wall:.4f}",
            f"{cps:.0f}",
        ]
        for run_id, created_at, cycles, wall, cps in history
    ]
    print(format_grid(headers, rows))
    print(f"{len(history)} run(s) of {args.scenario}")
    if args.csv:

        def write_csv() -> Path:
            import csv

            path = Path(args.csv)
            with path.open("w", newline="") as handle:
                writer = csv.writer(handle)
                writer.writerow(
                    [
                        "run_id",
                        "created_at",
                        "total_cycles",
                        "wall_time_seconds",
                        "configs_per_second",
                    ]
                )
                for run_id, created_at, cycles, wall, cps in history:
                    writer.writerow(
                        [run_id, created_at, cycles,
                         f"{wall:.6f}", f"{cps:.1f}"]
                    )
            return path

        if not _export(write_csv, "history CSV"):
            return 2
    return 0


def _cmd_suite_trends(args: argparse.Namespace) -> int:
    if bool(args.db) == bool(args.runs):
        print(
            "error: pass exactly one of --db or --runs",
            file=sys.stderr,
        )
        return 2
    if args.db:
        store = _open_store(args.db)
        if store is None:
            return 2
    else:
        # JSON runs (oldest first) load into an ephemeral store, so one
        # code path serves both sources; run ids follow file order.
        store = ResultStore(":memory:")
        for ref in args.runs:
            run = _resolve_run(ref, None, "run")
            if run is None:
                store.close()
                return 2
            store.record_run(run)
    thresholds = StepThresholds(
        cycle_percent=args.cycle_step,
        wall_percent=args.wall_step,
        throughput_percent=args.throughput_step,
        min_wall_seconds=args.min_wall,
        min_configs_per_second=args.min_throughput,
    )
    with store:
        report = compute_trends(store, args.scenarios, thresholds)
    if not report.trends:
        print("no scenarios with recorded results", file=sys.stderr)
        return 2
    print(render_trends(report))
    ok = True
    if args.html:
        ok &= _export(
            lambda: write_trends_html(report, args.html), "trends HTML"
        )
    if args.csv:
        ok &= _export(
            lambda: write_trends_csv(report, args.csv), "trends CSV"
        )
    return 0 if ok else 2


def _cmd_suite(args: argparse.Namespace) -> int:
    if args.suite_command == "list":
        return _cmd_suite_list(args)
    if args.suite_command == "run":
        return _cmd_suite_run(args)
    if args.suite_command == "history":
        return _cmd_suite_history(args)
    if args.suite_command == "trends":
        return _cmd_suite_trends(args)
    return _cmd_suite_compare(args)


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serve import ServerConfig, run_daemon

    if not 0 <= args.port <= 65535:
        print(
            f"error: --port must be in 0..65535, got {args.port}",
            file=sys.stderr,
        )
        return 2
    try:
        config = ServerConfig(
            workers=args.workers,
            queue_capacity=args.queue_capacity,
            batch_window_seconds=args.batch_window,
            cache_capacity=args.cache_capacity,
            default_timeout_seconds=args.default_timeout,
            profile_cache_dir=args.profile_cache_dir,
            task_retries=args.task_retries,
            retry_backoff_seconds=args.retry_backoff,
            search_deadline_seconds=args.search_deadline,
            breaker_threshold=args.breaker_threshold,
            breaker_cooldown_seconds=args.breaker_cooldown,
            degrade_under_deadline=args.degrade,
        )
        if args.drain_deadline is not None and args.drain_deadline <= 0:
            raise ValueError("--drain-deadline must be positive")
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    try:
        return run_daemon(
            config,
            host=args.host,
            port=args.port,
            verbose=args.verbose,
            drain_deadline_seconds=args.drain_deadline,
        )
    except OSError as error:
        print(
            f"error: cannot bind {args.host}:{args.port}: {error}",
            file=sys.stderr,
        )
        return 2


def _cmd_verify(args: argparse.Namespace) -> int:
    from .ir import find_loops, live_variable_sets, verify_cdfg
    from .suite import SCENARIOS

    specs: list[WorkloadSpec] = list(args.workloads)
    if args.all:
        seen = {spec.label for spec in specs}
        candidates = [s.workload for s in SCENARIOS.values()]
        # The registered suite is partly table-driven; always cover the
        # IR-backed application kinds as well so --all exercises the
        # verifier on real lowered programs.
        candidates += [
            WorkloadSpec.ofdm_measured(),
            WorkloadSpec.jpeg_measured(),
            WorkloadSpec.minic(0),
        ]
        for spec in candidates:
            if spec.label not in seen:
                seen.add(spec.label)
                specs.append(spec)
    if not specs:
        print(
            "error: no workloads to verify (name some or pass --all)",
            file=sys.stderr,
        )
        return 2

    failed = 0
    skipped = 0
    for spec in specs:
        cdfg = spec.cdfg(optimize=False if args.no_optimize else None)
        if cdfg is None:
            skipped += 1
            print(f"{spec.label}: skipped (no IR behind this workload kind)")
            continue
        report = verify_cdfg(cdfg)
        ops = sum(
            len(block.instructions)
            for cfg in cdfg.cfgs.values()
            for block in cfg.blocks.values()
        )
        status = "ok" if report.ok else "FAIL"
        print(
            f"{spec.label}: {status} "
            f"({len(cdfg.cfgs)} functions, {cdfg.block_count} blocks, "
            f"{ops} ops, {len(report.errors)} errors, "
            f"{len(report.warnings)} warnings)"
        )
        if report.diagnostics:
            for line in report.render().splitlines():
                print(f"  {line}")
        if args.stats:
            for name, cfg in cdfg.cfgs.items():
                liveness = live_variable_sets(cfg)
                peak_live = max(
                    (len(s) for s in liveness.in_sets.values()), default=0
                )
                print(
                    f"  {name}: {len(cfg.blocks)} blocks, "
                    f"{sum(len(b.instructions) for b in cfg.blocks.values())}"
                    f" ops, {len(find_loops(cfg).loops)} loops, "
                    f"peak live scalars {peak_live} "
                    f"(liveness converged in {liveness.iterations} sweeps)"
                )
        if not report.ok:
            failed += 1
    verified = len(specs) - skipped
    print(
        f"verified {verified} workload{'s' if verified != 1 else ''}: "
        f"{verified - failed} clean, {failed} failing, {skipped} skipped"
    )
    return 1 if failed else 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "partition":
        return _cmd_partition(args)
    if args.command == "explore":
        return _cmd_explore(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "verify":
        return _cmd_verify(args)
    return _cmd_suite(args)


if __name__ == "__main__":
    sys.exit(main())
