"""Command-line entry point: ``python -m repro``.

Two subcommands wrap the existing factories so the common scenarios run
without writing a script:

``partition``
    One workload on one platform against one timing constraint
    (absolute ``--constraint`` or relative ``--fraction``), with any
    registered search algorithm::

        python -m repro partition --workload ofdm --fraction 0.5
        python -m repro partition --workload synthetic:40:seed=3 \\
            --algorithm annealing:seed=7 --constraint 250000 --pareto

``explore``
    A (workload × platform × constraint × algorithm) grid fanned out
    over worker processes, with optional CSV/JSON export::

        python -m repro explore --workloads ofdm jpeg \\
            --afpga 1500 5000 --cgcs 2 3 --fractions 0.9 0.5 \\
            --algorithms greedy multi_start --csv grid.csv

Workload syntax: ``ofdm`` | ``jpeg`` | ``ofdm-measured`` |
``jpeg-measured`` | ``synthetic:<blocks>[:key=value,...]``.
Algorithm syntax: ``<name>[:key=value,...]`` with the
:class:`repro.search.AlgorithmSpec` factory parameters.
"""

from __future__ import annotations

import argparse
import sys

from .explore import DesignSpace, PlatformSpec, WorkloadSpec, explore
from .partition import EngineConfig
from .platform import paper_platform
from .reporting import render_exploration, render_pareto
from .reporting import write_exploration_csv, write_exploration_json
from .search import AlgorithmSpec, make_partitioner


def _parse_params(text: str) -> dict[str, object]:
    """``"seed=3,cooling=0.8"`` -> {'seed': 3, 'cooling': 0.8}."""
    params: dict[str, object] = {}
    for item in filter(None, text.split(",")):
        if "=" not in item:
            raise argparse.ArgumentTypeError(
                f"malformed parameter {item!r}; expected key=value"
            )
        key, raw = item.split("=", 1)
        value: object
        try:
            value = int(raw)
        except ValueError:
            try:
                value = float(raw)
            except ValueError:
                value = raw
        params[key.strip()] = value
    return params


def parse_workload(text: str) -> WorkloadSpec:
    kind, __, rest = text.partition(":")
    if kind == "ofdm":
        return WorkloadSpec.ofdm()
    if kind == "jpeg":
        return WorkloadSpec.jpeg()
    if kind == "ofdm-measured":
        return WorkloadSpec.ofdm_measured(**_parse_params(rest))
    if kind == "jpeg-measured":
        return WorkloadSpec.jpeg_measured(**_parse_params(rest))
    if kind == "synthetic":
        blocks, __, params = rest.partition(":")
        if not blocks:
            raise argparse.ArgumentTypeError(
                "synthetic workloads need a block count: synthetic:<blocks>"
            )
        return WorkloadSpec.synthetic(int(blocks), **_parse_params(params))
    raise argparse.ArgumentTypeError(
        f"unknown workload {text!r}; expected ofdm, jpeg, ofdm-measured, "
        "jpeg-measured or synthetic:<blocks>[:key=value,...]"
    )


def parse_algorithm(text: str) -> AlgorithmSpec:
    name, __, rest = text.partition(":")
    factories = {
        "greedy": AlgorithmSpec.greedy,
        "exhaustive": AlgorithmSpec.exhaustive,
        "multi_start": AlgorithmSpec.multi_start,
        "annealing": AlgorithmSpec.annealing,
    }
    factory = factories.get(name)
    if factory is None:
        raise argparse.ArgumentTypeError(
            f"unknown algorithm {name!r}; expected one of {sorted(factories)}"
        )
    try:
        return factory(**_parse_params(rest))
    except TypeError as error:
        raise argparse.ArgumentTypeError(str(error)) from None


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Hardware/software partitioning for hybrid reconfigurable "
            "platforms (conf_date_GalanisMTSG04 reproduction)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    part = sub.add_parser(
        "partition", help="partition one workload on one platform"
    )
    part.add_argument(
        "--workload", type=parse_workload, required=True,
        help="ofdm | jpeg | *-measured | synthetic:<blocks>[:key=value,...]",
    )
    part.add_argument("--afpga", type=int, default=1500)
    part.add_argument("--cgcs", type=int, default=2)
    part.add_argument("--clock-ratio", type=int, default=3)
    part.add_argument("--reconfig-cycles", type=int, default=20)
    group = part.add_mutually_exclusive_group(required=True)
    group.add_argument(
        "--constraint", type=int, help="timing constraint in FPGA cycles"
    )
    group.add_argument(
        "--fraction", type=float,
        help="constraint as a fraction of the all-FPGA cycle count",
    )
    part.add_argument(
        "--algorithm", type=parse_algorithm,
        default=AlgorithmSpec.greedy(),
        help="greedy | exhaustive | multi_start | annealing[:key=value,...]",
    )
    part.add_argument(
        "--max-kernels", type=int, default=None,
        help="move budget (EngineConfig.max_kernels_moved)",
    )
    part.add_argument(
        "--pareto", action="store_true",
        help="also print the Pareto front of visited configurations",
    )

    expl = sub.add_parser(
        "explore", help="sweep a (workload x platform x constraint x "
        "algorithm) grid",
    )
    expl.add_argument(
        "--workloads", type=parse_workload, nargs="+", required=True
    )
    expl.add_argument("--afpga", type=int, nargs="+", default=[1500, 5000])
    expl.add_argument("--cgcs", type=int, nargs="+", default=[2, 3])
    expl.add_argument(
        "--fractions", type=float, nargs="+", default=[0.9, 0.75, 0.5]
    )
    expl.add_argument(
        "--algorithms", type=parse_algorithm, nargs="+",
        default=[AlgorithmSpec.greedy()],
    )
    expl.add_argument("--workers", type=int, default=1)
    expl.add_argument("--csv", help="write the grid as CSV to this path")
    expl.add_argument("--json", help="write the full report as JSON")
    return parser


def _cmd_partition(args: argparse.Namespace) -> int:
    workload = args.workload.build()
    platform = paper_platform(
        args.afpga,
        args.cgcs,
        clock_ratio=args.clock_ratio,
        reconfig_cycles=args.reconfig_cycles,
    )
    config = EngineConfig(max_kernels_moved=args.max_kernels)
    partitioner = make_partitioner(
        args.algorithm, workload, platform, config=config
    )
    constraint = args.constraint
    if constraint is None:
        if args.fraction <= 0:
            print("error: --fraction must be positive", file=sys.stderr)
            return 2
        constraint = max(1, round(partitioner.initial_cycles() * args.fraction))
    result = partitioner.run(constraint)
    print(f"algorithm: {args.algorithm.label}")
    print(result.summary())
    for step in result.steps:
        marker = "met" if step.constraint_met else "   "
        print(
            f"  moved BB {step.moved_bb_id:>3}: total {step.total_cycles} "
            f"(fpga {step.fpga_cycles}, cgc {step.cgc_fpga_cycles}, "
            f"comm {step.comm_cycles}) {marker}"
        )
    if args.pareto:
        print("\nPareto front (cycles / kernels moved / CGC rows):")
        print(render_pareto(partitioner.pareto_front()))
    return 0


def _cmd_explore(args: argparse.Namespace) -> int:
    space = DesignSpace.grid(
        args.workloads,
        afpga_values=tuple(args.afpga),
        cgc_counts=tuple(args.cgcs),
        constraint_fractions=tuple(args.fractions),
        algorithms=tuple(args.algorithms),
    )
    report = explore(space, max_workers=args.workers)
    print(render_exploration(report))
    if len(report.algorithms()) > 1:
        # Compared per workload: absolute cycle counts are only
        # commensurable within one application.
        print("\nBest point per algorithm:")
        for workload in report.workload_names():
            print(f"  {workload}:")
            for label, best in report.best_per_algorithm(workload).items():
                print(
                    f"    {label}: {best.final_cycles} cycles "
                    f"(A={best.afpga}, {best.cgc_count} CGCs, "
                    f"{best.kernels_moved} moved)"
                )
    if args.csv:
        print(f"wrote {write_exploration_csv(report.results, args.csv)}")
    if args.json:
        print(f"wrote {write_exploration_json(report, args.json)}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "partition":
        return _cmd_partition(args)
    return _cmd_explore(args)


if __name__ == "__main__":
    sys.exit(main())
