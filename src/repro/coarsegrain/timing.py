"""Coarse-grain execution-time model (Eq. 3 of the paper).

Per basic block the list scheduler yields a latency in CGC cycles; the
whole-application coarse-grain time is::

    t_coarse = Σ_i t_to_coarse(BB_i) × Iter(BB_i)

All aggregation happens in *CGC ticks*; conversion to the FPGA cycle
timebase the paper reports (T_FPGA = clock_ratio × T_CGC) happens at the
reporting boundary, keeping intermediate arithmetic exact.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.dfg import DataFlowGraph
from ..platform.characterization import HardwareCharacterization
from .datapath import CGCDatapath
from .scheduler import CGCSchedule, schedule_dfg


@dataclass(frozen=True)
class CoarseGrainBlockTiming:
    """Timing of one basic block mapped on the CGC data-path."""

    cgc_cycles: int       # latency of one invocation, in CGC clock cycles
    compute_ops: int
    memory_ops: int
    #: Peak CGC node rows the schedule occupies in any single cycle,
    #: summed over CGCs — the resource footprint the multi-objective
    #: search trades against latency.
    rows_used: int = 0

    def fpga_cycles(self, characterization: HardwareCharacterization) -> float:
        """One invocation's latency expressed in FPGA cycles."""
        return characterization.cgc_ticks_to_fpga_cycles(self.cgc_cycles)


def _schedule_rows_used(schedule: CGCSchedule) -> int:
    """Peak rows occupied: per cycle, each CGC needs ``ceil(ops/cols)``
    rows for its compute ops; the footprint is the max over cycles of the
    sum over CGCs.

    One pass over the ops (O(ops × duration)) instead of rescanning the
    whole schedule per cycle — this runs on every block mapping.
    """
    counts: dict[tuple[int, int], int] = {}
    for op in schedule.ops.values():
        if op.unit != "node" or op.cgc_index is None:
            continue
        for cycle in range(op.cycle, op.cycle + max(op.duration, 1)):
            key = (cycle, op.cgc_index)
            counts[key] = counts.get(key, 0) + 1
    rows_by_cycle: dict[int, int] = {}
    for (cycle, cgc_index), used in counts.items():
        cols = schedule.datapath.cgcs[cgc_index].geometry.cols
        rows_by_cycle[cycle] = rows_by_cycle.get(cycle, 0) + -(-used // cols)
    return max(rows_by_cycle.values(), default=0)


def block_cgc_timing(
    dfg: DataFlowGraph, datapath: CGCDatapath
) -> CoarseGrainBlockTiming:
    """Schedule one block on the data-path and extract its latency."""
    schedule = schedule_dfg(dfg, datapath)
    compute = sum(1 for op in schedule.ops.values() if op.unit == "node")
    memory = sum(1 for op in schedule.ops.values() if op.unit == "mem")
    return CoarseGrainBlockTiming(
        cgc_cycles=schedule.makespan,
        compute_ops=compute,
        memory_ops=memory,
        rows_used=_schedule_rows_used(schedule),
    )


def application_cgc_ticks(
    block_timings: dict[int, CoarseGrainBlockTiming],
    iterations: dict[int, int],
) -> int:
    """Eq. 3 aggregation in CGC ticks."""
    total = 0
    for bb_id, timing in block_timings.items():
        total += timing.cgc_cycles * iterations.get(bb_id, 0)
    return total


def speedup_over_fpga(
    fpga_cycles: int,
    cgc_ticks: int,
    characterization: HardwareCharacterization,
) -> float:
    """How much faster the CGC executes a block than the FPGA mapping.

    Both arguments are per-invocation latencies in their native timebases.
    """
    if cgc_ticks == 0:
        return float("inf") if fpga_cycles > 0 else 1.0
    cgc_in_fpga_cycles = characterization.cgc_ticks_to_fpga_cycles(cgc_ticks)
    return fpga_cycles / cgc_in_fpga_cycles if cgc_in_fpga_cycles else float("inf")
