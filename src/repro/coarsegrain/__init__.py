"""Coarse-grain CGC data-path: model, scheduling, binding, timing (§3.3)."""

from .binding import (
    BindingError,
    DatapathBinding,
    NodeBinding,
    RegisterAllocation,
    bind_schedule,
)
from .cgc import CGC, CGCGeometry, cgc_node_executable, make_cgc_array
from .datapath import CGCDatapath, UnsupportedOperationError, standard_datapath
from .scheduler import CGCSchedule, ListScheduler, ScheduledOp, schedule_dfg
from .timing import (
    CoarseGrainBlockTiming,
    application_cgc_ticks,
    block_cgc_timing,
    speedup_over_fpga,
)

__all__ = [
    "BindingError",
    "CGC",
    "CGCDatapath",
    "CGCGeometry",
    "CGCSchedule",
    "CoarseGrainBlockTiming",
    "DatapathBinding",
    "ListScheduler",
    "NodeBinding",
    "RegisterAllocation",
    "ScheduledOp",
    "UnsupportedOperationError",
    "application_cgc_ticks",
    "bind_schedule",
    "block_cgc_timing",
    "cgc_node_executable",
    "make_cgc_array",
    "schedule_dfg",
    "speedup_over_fpga",
    "standard_datapath",
]
