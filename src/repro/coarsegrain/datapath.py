"""The coarse-grain data-path: CGCs + register bank + steering network.

"This data-path consists of a set of Coarse-Grain Components (CGCs)
implemented in ASIC technology, a reconfigurable interconnection network,
and a register bank" (§3.3).  The data-path exposes the aggregate resources
the list scheduler allocates each cycle: compute node slots, the chaining
depth, and shared-memory ports for kernel loads/stores.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.dfg import DataFlowGraph
from ..ir.operations import OpClass
from .cgc import CGC, cgc_node_executable, make_cgc_array


class UnsupportedOperationError(ValueError):
    """A DFG contains an operation the CGC data-path cannot execute."""


@dataclass
class CGCDatapath:
    """A configured coarse-grain data-path instance.

    ``memory_ports`` bounds concurrent shared-memory accesses per CGC cycle
    (kernel array traffic); ``register_bank_size`` bounds values held
    between cycles.
    """

    cgcs: list[CGC] = field(default_factory=lambda: make_cgc_array(2))
    memory_ports: int = 2
    register_bank_size: int = 64
    #: CGC clock cycles one shared-memory access occupies its port for.
    #: The shared data memory is a single physical SRAM shared with the
    #: fine-grain fabric; it does not get faster because the CGC clock is
    #: faster, so at T_FPGA = 3·T_CGC an access costs ~3 CGC cycles.
    memory_latency: int = 3

    def __post_init__(self) -> None:
        if not self.cgcs:
            raise ValueError("data-path needs at least one CGC")
        if self.memory_ports < 1:
            raise ValueError("data-path needs at least one memory port")
        if self.register_bank_size < 1:
            raise ValueError("register bank must hold at least one value")
        if self.memory_latency < 1:
            raise ValueError("memory latency must be at least one cycle")

    # ------------------------------------------------------------------
    # Aggregate resources
    # ------------------------------------------------------------------
    @property
    def node_slots_per_cycle(self) -> int:
        """Compute operations issueable per CGC cycle (one per node)."""
        return sum(cgc.node_count for cgc in self.cgcs)

    @property
    def chain_depth(self) -> int:
        """Dependent-op chain length executable within one cycle."""
        return max(cgc.chain_depth for cgc in self.cgcs)

    @property
    def cgc_count(self) -> int:
        return len(self.cgcs)

    def describe(self) -> str:
        """Human-readable configuration, e.g. ``two 2x2`` / ``three 2x2``."""
        names = {2: "two", 3: "three", 1: "one", 4: "four"}
        geometry = self.cgcs[0].geometry
        homogeneous = all(c.geometry == geometry for c in self.cgcs)
        if homogeneous:
            count_name = names.get(self.cgc_count, str(self.cgc_count))
            return f"{count_name} {geometry}"
        return ", ".join(str(c) for c in self.cgcs)

    # ------------------------------------------------------------------
    # Feasibility
    # ------------------------------------------------------------------
    def supports_dfg(self, dfg: DataFlowGraph) -> bool:
        """True if every DFG node is executable on this data-path."""
        for node in dfg.nodes:
            op_class = node.op_class
            if op_class in (OpClass.MOVE, OpClass.MEM):
                continue
            if not cgc_node_executable(node.opcode):
                return False
        return True

    def reject_unsupported(self, dfg: DataFlowGraph) -> None:
        """Raise with a precise message when a DFG cannot be mapped."""
        for node in dfg.nodes:
            op_class = node.op_class
            if op_class in (OpClass.MOVE, OpClass.MEM):
                continue
            if not cgc_node_executable(node.opcode):
                raise UnsupportedOperationError(
                    f"operation {node.opcode.mnemonic!r} (node "
                    f"{node.node_id}) is not executable on CGC nodes"
                )


def standard_datapath(cgc_count: int, rows: int = 2, cols: int = 2,
                      **kwargs) -> CGCDatapath:
    """The experiment configurations: ``standard_datapath(2)`` = two 2x2."""
    return CGCDatapath(cgcs=make_cgc_array(cgc_count, rows, cols), **kwargs)
