"""Coarse-Grain Component (CGC) model, after Galanis et al. FPL'04 [6].

A CGC is an ``n × m`` array of nodes; every node contains a multiplier and
an ALU, exactly one of which is active per clock cycle.  Steering logic
reconfigures the connections among nodes so that chains of dependent
operations (e.g. multiply-add) complete within a single CGC clock cycle —
this intra-cycle chaining is the CGC data-path's key performance feature.

We model a chain-depth limit equal to the number of rows ``n``: a chain of
up to ``n`` dependent ALU/MUL operations fits inside one cycle (the clock
period T_CGC "is set for having unit execution delay for the CGCs", §3.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.operations import OpClass, Opcode


@dataclass(frozen=True)
class CGCGeometry:
    """Shape of one CGC node array."""

    rows: int
    cols: int

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ValueError("CGC geometry must be at least 1x1")

    @property
    def node_count(self) -> int:
        return self.rows * self.cols

    def __str__(self) -> str:
        return f"{self.rows}x{self.cols}"


@dataclass(frozen=True)
class CGC:
    """One coarse-grain component instance."""

    index: int
    geometry: CGCGeometry

    @property
    def node_count(self) -> int:
        return self.geometry.node_count

    @property
    def chain_depth(self) -> int:
        """Maximum dependent ops chainable in one cycle (= rows)."""
        return self.geometry.rows

    def __str__(self) -> str:
        return f"CGC{self.index}({self.geometry})"


def cgc_node_executable(opcode: Opcode) -> bool:
    """Can a CGC node's multiplier/ALU execute this opcode?

    CGC nodes handle word-level ALU and multiply operations.  Memory ops go
    through the shared-memory ports (handled by the data-path, not a node),
    moves are routing, and divisions/calls are not implementable.
    """
    if opcode.op_class is OpClass.ALU:
        return True
    if opcode.op_class is OpClass.MUL:
        return True
    return False


def make_cgc_array(count: int, rows: int = 2, cols: int = 2) -> list[CGC]:
    """Build ``count`` identical CGCs (the paper uses two or three 2x2)."""
    if count < 1:
        raise ValueError("need at least one CGC")
    geometry = CGCGeometry(rows, cols)
    return [CGC(index, geometry) for index in range(count)]
