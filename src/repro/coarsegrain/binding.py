"""Binding: scheduled operations -> physical CGC nodes + register bank.

The second mapping step of §3.3 ("binding with the CGCs").  The scheduler
already fixed each op's cycle, CGC and chain depth; binding assigns the
concrete (row, col) node inside that CGC and allocates register-bank slots
for every value that lives across cycles, reporting register pressure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .scheduler import CGCSchedule


class BindingError(ValueError):
    """Raised when a schedule cannot be realized on the data-path."""


@dataclass(frozen=True)
class NodeBinding:
    """Physical placement of one scheduled compute op."""

    node_id: int
    cycle: int
    cgc_index: int
    row: int
    col: int


@dataclass
class RegisterAllocation:
    """Register-bank usage: values produced in one cycle, used later."""

    max_live: int = 0
    per_cycle_live: dict[int, int] = field(default_factory=dict)


@dataclass
class DatapathBinding:
    """Complete binding of a schedule."""

    schedule: CGCSchedule
    node_bindings: dict[int, NodeBinding] = field(default_factory=dict)
    registers: RegisterAllocation = field(default_factory=RegisterAllocation)

    def validate(self) -> None:
        """No physical node is used twice in the same cycle; rows increase
        along chains (steering flows downward through the array)."""
        used: set[tuple[int, int, int, int]] = set()
        for binding in self.node_bindings.values():
            key = (binding.cycle, binding.cgc_index, binding.row, binding.col)
            if key in used:
                raise AssertionError(
                    f"physical node reused in cycle {binding.cycle}: "
                    f"CGC{binding.cgc_index} ({binding.row},{binding.col})"
                )
            used.add(key)
        datapath = self.schedule.datapath
        if self.registers.max_live > datapath.register_bank_size:
            raise AssertionError(
                f"register pressure {self.registers.max_live} exceeds bank "
                f"size {datapath.register_bank_size}"
            )


def bind_schedule(schedule: CGCSchedule) -> DatapathBinding:
    """Assign physical CGC nodes and compute register pressure.

    Within a (cycle, CGC) group, ops are placed in chain-depth order: an op
    at depth d lands in row d-1, columns first-fit.  The scheduler's
    per-CGC slot accounting guarantees a free node exists; chain depth ≤
    rows guarantees the row exists.
    """
    dfg = schedule.dfg
    datapath = schedule.datapath
    binding = DatapathBinding(schedule)

    # ------------------------------------------------------------------
    # Physical node assignment
    # ------------------------------------------------------------------
    by_cycle_cgc: dict[tuple[int, int], list] = {}
    for op in schedule.ops.values():
        if op.unit != "node":
            continue
        assert op.cgc_index is not None
        by_cycle_cgc.setdefault((op.cycle, op.cgc_index), []).append(op)

    for (cycle, cgc_index), ops in sorted(by_cycle_cgc.items()):
        geometry = datapath.cgcs[cgc_index].geometry
        # occupied[row] = set of used columns
        occupied: dict[int, set[int]] = {r: set() for r in range(geometry.rows)}
        for op in sorted(ops, key=lambda o: (o.chain_depth, o.node_id)):
            preferred_row = min(op.chain_depth - 1, geometry.rows - 1)
            placed = False
            # Try the preferred row first, then any row with space: chain
            # steering is flexible enough to route within the array.
            rows_to_try = [preferred_row] + [
                r for r in range(geometry.rows) if r != preferred_row
            ]
            for row in rows_to_try:
                for col in range(geometry.cols):
                    if col not in occupied[row]:
                        occupied[row].add(col)
                        binding.node_bindings[op.node_id] = NodeBinding(
                            op.node_id, cycle, cgc_index, row, col
                        )
                        placed = True
                        break
                if placed:
                    break
            if not placed:
                raise BindingError(
                    f"no free node in CGC {cgc_index} at cycle {cycle} "
                    f"(scheduler over-subscribed — internal error)"
                )

    # ------------------------------------------------------------------
    # Register-bank pressure: a value is live from the end of its producing
    # cycle until the last cycle that consumes it from a *later* cycle.
    # ------------------------------------------------------------------
    makespan = schedule.makespan
    live_intervals: list[tuple[int, int]] = []
    for node in dfg.nodes:
        producer = schedule.ops[node.node_id]
        consumers = [
            schedule.ops[s] for s in dfg.successors(node.node_id)
        ]
        cross_cycle = [c.cycle for c in consumers if c.cycle > producer.cycle]
        is_live_out = (
            node.instruction.dest is not None
            and not dfg.successors(node.node_id)
        )
        if cross_cycle:
            live_intervals.append((producer.cycle, max(cross_cycle)))
        elif is_live_out and producer.cycle < makespan:
            # Block outputs stay in the bank until the kernel drains.
            live_intervals.append((producer.cycle, makespan))

    per_cycle: dict[int, int] = {}
    for start, end in live_intervals:
        for cycle in range(start, end):
            per_cycle[cycle] = per_cycle.get(cycle, 0) + 1
    binding.registers.per_cycle_live = per_cycle
    binding.registers.max_live = max(per_cycle.values(), default=0)

    binding.validate()
    return binding
