"""Resource-constrained list scheduler for the CGC data-path (§3.3).

"The steps of the mapping process are: (a) scheduling of DFG operations,
and (b) binding with the CGCs.  A proper list-based scheduler has been
developed."  This module is that scheduler.

Model
-----
* Time advances in CGC cycles (unit execution delay per node, §3.3).
* Each CGC node executes one ALU or MUL operation per cycle; a data-path
  with k CGCs of n×m nodes issues up to ``k·n·m`` compute ops per cycle.
* Intra-cycle chaining: steering logic connects nodes of the *same* CGC,
  so a chain of up to ``n`` dependent operations (multiply-add, add-add-…)
  completes within one cycle.  Chains cannot cross CGC boundaries within a
  cycle.
* LOAD/STORE go to the *shared data memory* (Figure 1): an access occupies
  one of ``memory_ports`` ports for ``memory_latency`` CGC cycles
  (non-pipelined — the memory is one physical SRAM shared with the rest of
  the platform and does not scale with the CGC clock).  Memory ops neither
  start from nor extend an intra-cycle chain.
* MOVE/COPY nodes are routing/steering: free, same-cycle, and transparent
  to chain depth.

The scheduler records, for every op, its start cycle, duration, chain depth
and CGC, which makes the result directly bindable (see
:mod:`repro.coarsegrain.binding`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.dfg import DataFlowGraph
from ..ir.operations import ArrayBase, OpClass
from .datapath import CGCDatapath


@dataclass(frozen=True)
class ScheduledOp:
    """Placement of one DFG node in the schedule."""

    node_id: int
    cycle: int
    chain_depth: int       # 1-based within an intra-cycle chain; 0 for moves
    cgc_index: int | None  # compute ops only; None for moves / memory ops
    unit: str              # "node" | "mem" | "move"
    duration: int = 1      # cycles the op occupies its unit (0 for moves)
    port: int | None = None  # memory ops: which shared-memory port

    @property
    def end(self) -> int:
        """First cycle in which this op's result is available."""
        return self.cycle + self.duration


@dataclass
class CGCSchedule:
    """Complete schedule of one DFG on a CGC data-path."""

    dfg: DataFlowGraph
    datapath: CGCDatapath
    ops: dict[int, ScheduledOp] = field(default_factory=dict)

    @property
    def makespan(self) -> int:
        """Latency in CGC cycles (0 for an empty DFG)."""
        if not self.ops:
            return 0
        return max(op.cycle + max(op.duration, 1) for op in self.ops.values())

    def ops_in_cycle(self, cycle: int) -> list[ScheduledOp]:
        """Ops *active* during ``cycle`` (multi-cycle memory ops included)."""
        return [
            op
            for op in self.ops.values()
            if op.cycle <= cycle < op.cycle + max(op.duration, 1)
        ]

    # ------------------------------------------------------------------
    # Legality checking
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Assert every resource and dependency constraint holds."""
        dfg, dp = self.dfg, self.datapath
        expected = {node.node_id for node in dfg.nodes}
        if set(self.ops) != expected:
            raise AssertionError("schedule does not cover every DFG node")

        for cycle in range(self.makespan):
            active = self.ops_in_cycle(cycle)
            mem_ops = [op for op in active if op.unit == "mem"]
            if len(mem_ops) > dp.memory_ports:
                raise AssertionError(
                    f"cycle {cycle}: {len(mem_ops)} memory ops exceed "
                    f"{dp.memory_ports} ports"
                )
            ports_used = [op.port for op in mem_ops]
            if len(set(ports_used)) != len(ports_used):
                raise AssertionError(
                    f"cycle {cycle}: shared-memory port double-booked"
                )
            per_cgc: dict[int, int] = {}
            for op in active:
                if op.unit == "node":
                    assert op.cgc_index is not None
                    per_cgc[op.cgc_index] = per_cgc.get(op.cgc_index, 0) + 1
            for cgc_index, used in per_cgc.items():
                capacity = dp.cgcs[cgc_index].node_count
                if used > capacity:
                    raise AssertionError(
                        f"cycle {cycle}: CGC {cgc_index} issues {used} ops, "
                        f"capacity {capacity}"
                    )

        for src, dst in dfg.graph.edges():
            self._check_edge(src, dst)

    def _check_edge(self, src: int, dst: int) -> None:
        producer, consumer = self.ops[src], self.ops[dst]
        if producer.end <= consumer.cycle:
            return
        if producer.cycle != consumer.cycle:
            raise AssertionError(
                f"edge {src}->{dst}: consumer starts at {consumer.cycle} "
                f"before producer finishes at {producer.end}"
            )
        # Same cycle: must be a legal chain.
        if producer.unit == "mem" or consumer.unit == "mem":
            raise AssertionError(
                f"edge {src}->{dst}: memory ops cannot chain in-cycle"
            )
        if consumer.unit == "node" and producer.unit == "node":
            if producer.cgc_index != consumer.cgc_index:
                raise AssertionError(
                    f"edge {src}->{dst}: chain crosses CGC boundary"
                )
        if consumer.unit == "node":
            limit = (
                self.datapath.cgcs[consumer.cgc_index].chain_depth
                if consumer.cgc_index is not None
                else self.datapath.chain_depth
            )
            if consumer.chain_depth > limit:
                raise AssertionError(
                    f"edge {src}->{dst}: chain depth {consumer.chain_depth} "
                    f"exceeds limit {limit}"
                )
            if producer.chain_depth >= consumer.chain_depth and (
                producer.unit == "node"
            ):
                raise AssertionError(
                    f"edge {src}->{dst}: chain depth not increasing"
                )


def _node_heights(dfg: DataFlowGraph) -> dict[int, int]:
    """Longest path (in compute+mem ops) from each node to any sink."""
    heights: dict[int, int] = {}
    for node in reversed(list(dfg.nodes)):
        own = 0 if node.op_class is OpClass.MOVE else 1
        succ_heights = [heights[s] for s in dfg.successors(node.node_id)]
        heights[node.node_id] = own + max(succ_heights, default=0)
    return heights


class ListScheduler:
    """List scheduling with chain-aware per-CGC slot allocation."""

    def __init__(self, dfg: DataFlowGraph, datapath: CGCDatapath):
        self.dfg = dfg
        self.datapath = datapath
        datapath.reject_unsupported(dfg)
        self.heights = _node_heights(dfg)

    def schedule(self) -> CGCSchedule:
        result = CGCSchedule(self.dfg, self.datapath)
        remaining = {node.node_id for node in self.dfg.nodes}
        # busy-until time of each shared-memory port
        port_free_at = [0] * self.datapath.memory_ports
        cycle = 0
        # Guard: any DAG schedules within |V| · latency cycles.
        max_cycles = (2 + self.datapath.memory_latency) * (len(self.dfg) + 8)
        while remaining:
            if cycle > max_cycles:
                raise RuntimeError(
                    "scheduler failed to converge — internal error"
                )
            self._schedule_cycle(cycle, remaining, result, port_free_at)
            cycle += 1
        return result

    # ------------------------------------------------------------------
    def _schedule_cycle(
        self,
        cycle: int,
        remaining: set[int],
        result: CGCSchedule,
        port_free_at: list[int],
    ) -> None:
        free_slots = {
            index: cgc.node_count for index, cgc in enumerate(self.datapath.cgcs)
        }
        progressed = True
        while progressed:
            progressed = False
            candidates = sorted(
                remaining,
                key=lambda n: (-self.heights[n], n),
            )
            for node_id in candidates:
                placement = self._try_place(
                    node_id, cycle, free_slots, port_free_at, result
                )
                if placement is None:
                    continue
                result.ops[node_id] = placement
                remaining.discard(node_id)
                if placement.unit == "mem":
                    assert placement.port is not None
                    port_free_at[placement.port] = placement.end
                elif placement.unit == "node":
                    assert placement.cgc_index is not None
                    free_slots[placement.cgc_index] -= 1
                progressed = True

    def _try_place(
        self,
        node_id: int,
        cycle: int,
        free_slots: dict[int, int],
        port_free_at: list[int],
        result: CGCSchedule,
    ) -> ScheduledOp | None:
        node = self.dfg.node(node_id)
        op_class = node.op_class
        preds = self.dfg.predecessors(node_id)
        in_cycle_preds: list[ScheduledOp] = []
        for pred in preds:
            placed = result.ops.get(pred)
            if placed is None:
                return None  # dependency not yet scheduled at all
            if placed.cycle == cycle and placed.unit in ("node", "move"):
                in_cycle_preds.append(placed)
            elif placed.end > cycle:
                return None  # result not available yet (e.g. memory in flight)

        if op_class is OpClass.MOVE:
            # Moves are wires: free, chain-depth transparent.
            depth = max((p.chain_depth for p in in_cycle_preds), default=0)
            cgcs = {
                p.cgc_index for p in in_cycle_preds if p.cgc_index is not None
            }
            if len(cgcs) > 1:
                return None
            cgc_index = cgcs.pop() if cgcs else None
            return ScheduledOp(
                node_id, cycle, depth, cgc_index, "move", duration=0
            )

        if op_class is OpClass.MEM:
            if in_cycle_preds:
                return None  # address/value must come from earlier cycles
            # Local scratch buffers live in the data-path's register bank
            # and respond in one CGC cycle; globals go to the shared data
            # memory at its own (slower) access time.
            base = node.instruction.operands[0]
            is_local = isinstance(base, ArrayBase) and base.local
            duration = 1 if is_local else self.datapath.memory_latency
            for port, free_at in enumerate(port_free_at):
                if free_at <= cycle:
                    return ScheduledOp(
                        node_id,
                        cycle,
                        0,
                        None,
                        "mem",
                        duration=duration,
                        port=port,
                    )
            return None

        # Compute op (ALU/MUL).
        depth = 1 + max((p.chain_depth for p in in_cycle_preds), default=0)
        forced_cgcs = {
            p.cgc_index for p in in_cycle_preds if p.cgc_index is not None
        }
        if len(forced_cgcs) > 1:
            return None  # chain would span two CGCs
        if forced_cgcs:
            cgc_index = forced_cgcs.pop()
            if free_slots[cgc_index] <= 0:
                return None
            if depth > self.datapath.cgcs[cgc_index].chain_depth:
                return None
            return ScheduledOp(node_id, cycle, depth, cgc_index, "node")
        # Start of a new chain: pick the CGC with the most free slots that
        # satisfies the depth limit.
        best: int | None = None
        for index, slots in free_slots.items():
            if slots <= 0:
                continue
            if depth > self.datapath.cgcs[index].chain_depth:
                continue
            if best is None or slots > free_slots[best]:
                best = index
        if best is None:
            return None
        return ScheduledOp(node_id, cycle, depth, best, "node")


def schedule_dfg(dfg: DataFlowGraph, datapath: CGCDatapath) -> CGCSchedule:
    """Schedule one DFG and return the validated schedule."""
    schedule = ListScheduler(dfg, datapath).schedule()
    schedule.validate()
    return schedule
