"""Multi-objective view of visited partitioning configurations.

Every :class:`~repro.search.base.Partitioner` records each configuration
it visits as a :class:`VisitedConfiguration` carrying the three
objectives of the design space — total execution cycles, number of moved
kernels, and the peak CGC rows the moved kernels occupy.  All three are
minimized: fewer cycles is faster, fewer moves means less of the
application depends on the coarse-grain fabric, and fewer rows leaves
CGC area for other uses.  :func:`pareto_front` reduces a visited set to
its non-dominated configurations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass(frozen=True)
class VisitedConfiguration:
    """One hardware/software split an algorithm evaluated."""

    total_cycles: int
    moved_kernel_count: int
    cgc_rows_used: int
    moved_bb_ids: tuple[int, ...]
    algorithm: str = ""

    @property
    def objectives(self) -> tuple[int, int, int]:
        """The minimized objective vector."""
        return (self.total_cycles, self.moved_kernel_count, self.cgc_rows_used)

    def dominates(self, other: "VisitedConfiguration") -> bool:
        """True if this config is no worse in every objective and
        strictly better in at least one."""
        mine, theirs = self.objectives, other.objectives
        return (
            all(a <= b for a, b in zip(mine, theirs, strict=True))
            and mine != theirs
        )

    def to_dict(self) -> dict[str, object]:
        return {
            "algorithm": self.algorithm,
            "total_cycles": self.total_cycles,
            "moved_kernel_count": self.moved_kernel_count,
            "cgc_rows_used": self.cgc_rows_used,
            "moved_bb_ids": list(self.moved_bb_ids),
        }


def pareto_front(
    configurations: Iterable[VisitedConfiguration],
) -> list[VisitedConfiguration]:
    """The non-dominated subset, sorted by the objective vector.

    Configurations with identical objective vectors are collapsed to one
    representative (the lexicographically smallest moved-BB tuple, so the
    front is deterministic regardless of visit order).
    """
    # One representative per objective vector.
    by_objectives: dict[tuple[int, int, int], VisitedConfiguration] = {}
    for config in configurations:
        incumbent = by_objectives.get(config.objectives)
        if incumbent is None or config.moved_bb_ids < incumbent.moved_bb_ids:
            by_objectives[config.objectives] = config
    # Lexicographic sweep instead of the O(k^2) all-pairs check (an
    # exhaustive search visits 2^n configurations): walking candidates in
    # ascending objective order, every already-accepted point has
    # total_cycles <= the current one, so the current point is dominated
    # iff some accepted point also has moved_count <= and rows <=.  The
    # accepted (moved_count -> min rows) staircase answers that in
    # O(distinct move counts); vector equality is impossible after the
    # dedup above, so <= on all three axes is exactly dominance.
    candidates = sorted(by_objectives.values(), key=lambda c: c.objectives)
    front: list[VisitedConfiguration] = []
    min_rows_by_moved: dict[int, int] = {}
    for config in candidates:
        __, moved, rows = config.objectives
        if any(
            front_moved <= moved and front_rows <= rows
            for front_moved, front_rows in min_rows_by_moved.items()
        ):
            continue
        front.append(config)
        if min_rows_by_moved.get(moved, rows + 1) > rows:
            min_rows_by_moved[moved] = rows
    return front


def reduce_columns_to_best(
    ticks: Sequence[int],
    masks: Sequence[int],
    table,
    best: dict[tuple[int, int], tuple[int, int]] | None = None,
) -> dict[tuple[int, int], tuple[int, int]]:
    """Lossless ``(moved, rows) -> (min cycles, mask)`` reduction.

    For a fixed (moved, rows) pair, any configuration with more cycles
    is dominated by that pair's min-cycles one, so only the per-pair
    minimum (with the smallest-BB-tuple tie-break on exact cycle ties)
    can reach the Pareto front.  This keeps the working set at
    O(distinct (moved, rows) pairs) — a few dozen — while a 2^n
    enumeration log streams through in O(n) ints, instead of
    accumulating millions of objective-vector dict entries.  Pass an
    existing ``best`` dict to fold more columns in (shard merges);
    folding is order-independent because the incumbent update is a
    deterministic minimum.
    """
    ratio = table.clock_ratio
    rows_used = table.rows_used
    decoded: dict[int, tuple[int, ...]] = {}

    def bb_tuple(mask: int) -> tuple[int, ...]:
        ids = decoded.get(mask)
        if ids is None:
            ids = table.bb_ids_of(mask)
            decoded[mask] = ids
        return ids

    if best is None:
        best = {}
    for total_ticks, mask in zip(ticks, masks, strict=True):
        cycles = -(-total_ticks // ratio)
        key = (mask.bit_count(), rows_used(mask))
        incumbent = best.get(key)
        if incumbent is None or cycles < incumbent[0]:
            best[key] = (cycles, mask)
        elif (
            cycles == incumbent[0]
            and mask != incumbent[1]
            and bb_tuple(mask) < bb_tuple(incumbent[1])
        ):
            best[key] = (cycles, mask)
    return best


def pareto_front_from_best(
    best: dict[tuple[int, int], tuple[int, int]],
    table,
    algorithm: str,
) -> list[VisitedConfiguration]:
    """The staircase sweep of :func:`pareto_front`, run on a reduced
    ``(moved, rows) -> (cycles, mask)`` map (the output of
    :func:`reduce_columns_to_best` or a
    :class:`~repro.partition.packed.PackedVisitLog` in reduced mode).
    Only the front's members are materialized to
    :class:`VisitedConfiguration` records."""
    candidates = sorted(
        (cycles, moved, rows, mask)
        for (moved, rows), (cycles, mask) in best.items()
    )
    front: list[VisitedConfiguration] = []
    min_rows_by_moved: dict[int, int] = {}
    for cycles, moved, rows, mask in candidates:
        if any(
            front_moved <= moved and front_rows <= rows
            for front_moved, front_rows in min_rows_by_moved.items()
        ):
            continue
        front.append(
            VisitedConfiguration(
                total_cycles=cycles,
                moved_kernel_count=moved,
                cgc_rows_used=rows,
                moved_bb_ids=table.bb_ids_of(mask),
                algorithm=algorithm,
            )
        )
        if min_rows_by_moved.get(moved, rows + 1) > rows:
            min_rows_by_moved[moved] = rows
    return front


def pareto_front_from_columns(
    ticks: Sequence[int],
    masks: Sequence[int],
    table,
    algorithm: str,
) -> list[VisitedConfiguration]:
    """The staircase sweep run directly on a packed visited log.

    ``ticks``/``masks`` are the parallel columns of a
    :class:`~repro.partition.packed.PackedVisitLog` and ``table`` the
    :class:`~repro.partition.packed.PackedCostTable` that encoded the
    masks.  Dominated configurations (the overwhelming majority of an
    exhaustive enumeration) never become Python objects.  Produces
    exactly what :func:`pareto_front` produces for the same visited
    set, including the smallest-moved-tuple tie-break between
    configurations with identical objective vectors.
    """
    best = reduce_columns_to_best(ticks, masks, table)
    return pareto_front_from_best(best, table, algorithm)


def front_of_results(
    fronts: Sequence[Sequence[VisitedConfiguration]],
) -> list[VisitedConfiguration]:
    """Merge several algorithms' fronts into one combined front."""
    merged: list[VisitedConfiguration] = []
    for front in fronts:
        merged.extend(front)
    return pareto_front(merged)
