"""Multi-objective view of visited partitioning configurations.

Every :class:`~repro.search.base.Partitioner` records each configuration
it visits as a :class:`VisitedConfiguration` carrying the three
objectives of the design space — total execution cycles, number of moved
kernels, and the peak CGC rows the moved kernels occupy.  All three are
minimized: fewer cycles is faster, fewer moves means less of the
application depends on the coarse-grain fabric, and fewer rows leaves
CGC area for other uses.  :func:`pareto_front` reduces a visited set to
its non-dominated configurations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass(frozen=True)
class VisitedConfiguration:
    """One hardware/software split an algorithm evaluated."""

    total_cycles: int
    moved_kernel_count: int
    cgc_rows_used: int
    moved_bb_ids: tuple[int, ...]
    algorithm: str = ""

    @property
    def objectives(self) -> tuple[int, int, int]:
        """The minimized objective vector."""
        return (self.total_cycles, self.moved_kernel_count, self.cgc_rows_used)

    def dominates(self, other: "VisitedConfiguration") -> bool:
        """True if this config is no worse in every objective and
        strictly better in at least one."""
        mine, theirs = self.objectives, other.objectives
        return all(a <= b for a, b in zip(mine, theirs)) and mine != theirs

    def to_dict(self) -> dict[str, object]:
        return {
            "algorithm": self.algorithm,
            "total_cycles": self.total_cycles,
            "moved_kernel_count": self.moved_kernel_count,
            "cgc_rows_used": self.cgc_rows_used,
            "moved_bb_ids": list(self.moved_bb_ids),
        }


def pareto_front(
    configurations: Iterable[VisitedConfiguration],
) -> list[VisitedConfiguration]:
    """The non-dominated subset, sorted by the objective vector.

    Configurations with identical objective vectors are collapsed to one
    representative (the lexicographically smallest moved-BB tuple, so the
    front is deterministic regardless of visit order).
    """
    # One representative per objective vector.
    by_objectives: dict[tuple[int, int, int], VisitedConfiguration] = {}
    for config in configurations:
        incumbent = by_objectives.get(config.objectives)
        if incumbent is None or config.moved_bb_ids < incumbent.moved_bb_ids:
            by_objectives[config.objectives] = config
    # Lexicographic sweep instead of the O(k^2) all-pairs check (an
    # exhaustive search visits 2^n configurations): walking candidates in
    # ascending objective order, every already-accepted point has
    # total_cycles <= the current one, so the current point is dominated
    # iff some accepted point also has moved_count <= and rows <=.  The
    # accepted (moved_count -> min rows) staircase answers that in
    # O(distinct move counts); vector equality is impossible after the
    # dedup above, so <= on all three axes is exactly dominance.
    candidates = sorted(by_objectives.values(), key=lambda c: c.objectives)
    front: list[VisitedConfiguration] = []
    min_rows_by_moved: dict[int, int] = {}
    for config in candidates:
        __, moved, rows = config.objectives
        if any(
            front_moved <= moved and front_rows <= rows
            for front_moved, front_rows in min_rows_by_moved.items()
        ):
            continue
        front.append(config)
        if min_rows_by_moved.get(moved, rows + 1) > rows:
            min_rows_by_moved[moved] = rows
    return front


def front_of_results(
    fronts: Sequence[Sequence[VisitedConfiguration]],
) -> list[VisitedConfiguration]:
    """Merge several algorithms' fronts into one combined front."""
    merged: list[VisitedConfiguration] = []
    for front in fronts:
        merged.extend(front)
    return pareto_front(merged)
