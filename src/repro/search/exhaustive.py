"""Exhaustive subset search — the ground truth the heuristics are judged
against.

Eq. 2 prices any kernel subset in O(1) per inclusion, so for small
candidate counts (the paper's applications have ≤ 8 meaningful kernels)
every subset can be enumerated outright.  On the packed substrate the
enumeration walks subsets in **Gray-code order**: consecutive codes
differ in exactly one bit, so stepping from one configuration to the
next is a single integer toggle — one addition to the running Eq. 2
total, two appends to the visited column log, no recursion, no object
churn.  That is what lets the packed default ``max_candidates`` cap sit
at 24 (16.7M subsets); the object substrate keeps its historical
default of 16 (its per-subset object churn makes 2^24 a
minutes-to-hours mistake, not a default) — an explicit
``max_candidates`` overrides either.  Under a move budget the packed
walk switches to a budget-pruned depth-first enumeration (visiting only
the subsets within the budget, like the object reference, instead of
all 2^n codes).

Two composable exact-search modes push the certified range further:

* **Sharded Gray walk** (``shards=k``) — the 2^n Gray-code sequence is
  split into ``k`` contiguous code ranges.  Each worker seeds a running
  Eq. 2 total at its range-start mask (one O(n) materialization —
  ``gray(code) = code ^ (code >> 1)``), walks its segment with the same
  O(1) toggles, and ships back a compact summary: its local optimum,
  visit count, and either the raw visit columns or the lossless
  ``(moved, rows) -> min cycles`` Pareto reduction.  The parent merges
  summaries in shard order, so the result and front are bit-identical
  to the serial walk regardless of worker count (fan-out rides the same
  picklable-:class:`~repro.partition.packed.PackedCostTable` process
  machinery as :mod:`repro.explore`, serial fallback included).
* **Exact branch-and-bound** (``prune=True``) — kernels sorted by
  best-case per-kernel gain; because the Eq. 2 objective is additive
  over kernels, the suffix sums of the remaining negative deltas are an
  admissible bound on any subtree's achievable total.  A subtree is cut
  only when that bound shows it can affect **neither** the optimum
  (strict tick-level comparison, so tie-broken optima survive) **nor**
  the Pareto reduction (a shape-aware test against the evolving
  ``(moved, rows)`` incumbents, with ``<=`` so tie representatives
  survive) — certified-identical optima *and* fronts, at a fraction of
  the visits.  The bound is budget-aware, so ``prune=True`` also
  replaces the budget-pruned DFS for ``move_budget`` runs.  Sharded
  B&B decomposes over the 2^s assignments of the s most-gainful
  kernels; each prefix task is an independent B&B.

The object substrate keeps the original depth-first walk over
:class:`~repro.partition.costs.CostState` as the differential
reference.  Both substrates visit exactly the same subset set and pick
the same optimum — minimum total cycles, tie-broken by fewer moves then
lexicographic BB ids.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

from .. import telemetry
from ..parallel import map_tasks
from ..partition.costs import CostModel, CostState
from ..partition.packed import PackedCostTable
from ..partition.result import PartitionResult
from .base import Partitioner, register_algorithm

#: Hot enumeration loops poll an armed deadline every this-many + 1
#: visits — cheap enough for the hot path, frequent enough that an
#: expired budget cuts within milliseconds.
DEADLINE_CHECK_MASK = 0x1FFF


#: One exact-search fan-out unit's compact summary (picklable).
@dataclass
class ShardOutcome:
    """What one shard / branch-and-bound task ships back."""

    shard: int
    visits: int
    pruned_subtrees: int
    seconds: float
    #: Local optimum by the (ticks, moves, BB-tuple) key; None when the
    #: task's subspace is empty (e.g. a prefix over the move budget).
    best_total: int | None
    best_count: int
    best_mask: int
    #: Raw visit columns, in deterministic walk order (keep_visits).
    ticks: object | None
    masks: object | None
    #: The lossless (moved, rows) -> (cycles, mask) Pareto reduction
    #: (reduced mode; None when the raw columns are shipped instead).
    shape_items: tuple | None
    #: True when the task stopped at an expired deadline before
    #: exhausting its subspace (its best is best-so-far, not certified).
    partial: bool = False

    @property
    def configs_per_second(self) -> float:
        return self.visits / self.seconds if self.seconds > 0 else 0.0


def _fold_shape(
    table: PackedCostTable,
    shape_best: dict,
    decoded: dict,
    cycles: int,
    key: tuple[int, int],
    mask: int,
) -> None:
    """The reduce_columns_to_best incumbent rule (min cycles per
    (moved, rows) shape, exact ties to the smallest BB tuple)."""
    incumbent = shape_best.get(key)
    if incumbent is None or cycles < incumbent[0]:
        shape_best[key] = (cycles, mask)
    elif cycles == incumbent[0] and mask != incumbent[1]:
        ids = decoded.get(mask)
        if ids is None:
            ids = decoded[mask] = table.bb_ids_of(mask)
        inc_ids = decoded.get(incumbent[1])
        if inc_ids is None:
            inc_ids = decoded[incumbent[1]] = table.bb_ids_of(incumbent[1])
        if ids < inc_ids:
            shape_best[key] = (cycles, mask)


def _walk_shard(task) -> ShardOutcome:
    """Walk one contiguous Gray-code segment ``[lo, hi)``.

    The segment's first configuration is materialized once
    (``mask = gray(lo)``, one O(n) Eq. 2 sum); every following step is
    the usual O(1) toggle, so concatenating all shards' columns in
    shard order reproduces the serial walk's log exactly.

    ``deadline`` (a re-anchoring :class:`~repro.faults.Deadline`, or
    None) is polled every :data:`DEADLINE_CHECK_MASK` + 1 codes; an
    expired shard stops and ships back its best-so-far with
    ``partial=True``.
    """
    table, shard, lo, hi, keep, deadline = task
    started = time.perf_counter()
    n = len(table)
    deltas = table.move_delta
    delta_by_bit = {1 << i: deltas[i] for i in range(n)}
    mask = lo ^ (lo >> 1)
    total = table.total_ticks_of(mask)
    best_total, best_mask = total, mask
    best_count = mask.bit_count()
    best_ids: tuple[int, ...] | None = None
    bb_ids_of = table.bb_ids_of

    ticks_col = masks_col = None
    shape_best: dict | None = None
    if keep:
        max_total = table.initial_ticks + sum(abs(d) for d in deltas)
        if n <= 62 and max_total < (1 << 62):
            from array import array

            ticks_col, masks_col = array("q"), array("q")
        else:
            ticks_col, masks_col = [], []
        append_ticks = ticks_col.append
        append_masks = masks_col.append
        append_ticks(total)
        append_masks(mask)
    else:
        shape_best = {}
        decoded: dict = {}
        ratio = table.clock_ratio
        rows_used = table.rows_used
        _fold_shape(
            table, shape_best, decoded, -(-total // ratio),
            (best_count, rows_used(mask)), mask,
        )

    visited = hi - lo
    partial = False
    for code in range(lo + 1, hi):
        if (
            deadline is not None
            and not code & DEADLINE_CHECK_MASK
            and deadline.expired()
        ):
            visited = code - lo
            partial = True
            break
        bit = code & -code
        if mask & bit:
            total -= delta_by_bit[bit]
        else:
            total += delta_by_bit[bit]
        mask ^= bit
        if keep:
            append_ticks(total)
            append_masks(mask)
        else:
            _fold_shape(
                table, shape_best, decoded, -(-total // ratio),
                (mask.bit_count(), rows_used(mask)), mask,
            )
        if total > best_total:
            continue
        count = mask.bit_count()
        if total < best_total or count < best_count:
            best_total, best_mask, best_count = total, mask, count
            best_ids = None
        elif count == best_count:
            if best_ids is None:
                best_ids = bb_ids_of(best_mask)
            candidate_ids = bb_ids_of(mask)
            if candidate_ids < best_ids:
                best_mask, best_ids = mask, candidate_ids
    return ShardOutcome(
        shard=shard,
        visits=visited,
        pruned_subtrees=0,
        seconds=time.perf_counter() - started,
        best_total=best_total,
        best_count=best_count,
        best_mask=best_mask,
        ticks=ticks_col,
        masks=masks_col,
        shape_items=(
            None if shape_best is None else tuple(shape_best.items())
        ),
        partial=partial,
    )


def _bb_shard(task) -> ShardOutcome:
    """One branch-and-bound task: DFS over the non-prefix kernels with
    the prefix assignment ``p`` fixed.

    Kernels are ordered by ascending move delta (most gainful first),
    so the suffix prefix-sums of the negative deltas bound any
    subtree's achievable Eq. 2 gain; with a move budget of ``k`` moves
    left the bound takes the ``k`` best remaining gains.  A subtree is
    pruned only when it can neither beat/tie the incumbent optimum
    (strict ``>`` on ticks, so tick-level ties stay explored and the
    moves/BB-tuple tie-break is preserved) nor update any ``(moved,
    rows)`` Pareto-reduction incumbent (``<=`` on cycles, so
    cycle-level tie representatives are preserved) — which is what
    makes the pruned front bit-identical to the unpruned one.

    An armed ``deadline`` is polled every :data:`DEADLINE_CHECK_MASK` + 1
    recorded visits; expiry unwinds the DFS and ships the best-so-far
    with ``partial=True``.
    """
    table, shard, p, s, order, budget, keep, slack, deadline = task
    started = time.perf_counter()
    n = len(table)
    deltas = table.move_delta
    rest = order[s:]
    len_rest = len(rest)

    mask = 0
    total = table.initial_ticks
    count = 0
    for j in range(s):
        if p >> j & 1:
            i = order[j]
            mask |= 1 << i
            total += deltas[i]
            count += 1
    if budget is not None and count > budget:
        # Every configuration of this prefix exceeds the move budget —
        # the whole task's subspace is outside the search space.
        return ShardOutcome(
            shard=shard, visits=0, pruned_subtrees=0,
            seconds=time.perf_counter() - started,
            best_total=None, best_count=0, best_mask=0,
            ticks=[] if keep else None, masks=[] if keep else None,
            shape_items=None if keep else (),
        )

    # Admissible gain bound: rest[] is sorted by ascending delta, so
    # its negative deltas form the prefix rest[:neg]; the best
    # achievable gain from rest[j:] with at most k inclusions is the
    # sum of its first min(k, neg - j) entries.
    neg = 0
    while neg < len_rest and deltas[rest[neg]] < 0:
        neg += 1
    prefix_sums = [0] * (len_rest + 1)
    for j in range(len_rest):
        prefix_sums[j + 1] = prefix_sums[j] + deltas[rest[j]]

    def gain(j: int, k: int) -> int:
        if j >= neg or k <= 0:
            return 0
        take = min(k, neg - j)
        return prefix_sums[j + take] - prefix_sums[j]

    ratio = table.clock_ratio
    rows_used = table.rows_used
    bb_ids_of = table.bb_ids_of
    distinct_rows = sorted(set(table.cgc_rows))
    shape_best: dict = {}
    decoded: dict = {}
    cols_ticks: list[int] | None = [] if keep else None
    cols_masks: list[int] | None = [] if keep else None
    visits = 0
    pruned = 0
    stopped = False
    best_total, best_mask, best_count = total, mask, count
    best_ids: tuple[int, ...] | None = None

    def record(t: int, m: int, c: int) -> None:
        nonlocal visits, stopped
        visits += 1
        if (
            deadline is not None
            and not visits & DEADLINE_CHECK_MASK
            and deadline.expired()
        ):
            stopped = True
        if keep:
            cols_ticks.append(t)  # type: ignore[union-attr]
            cols_masks.append(m)  # type: ignore[union-attr]
        _fold_shape(
            table, shape_best, decoded, -(-t // ratio),
            (c, rows_used(m)), m,
        )

    def consider(t: int, m: int, c: int) -> None:
        nonlocal best_total, best_mask, best_count, best_ids
        if t > best_total:
            return
        if t < best_total or c < best_count:
            best_total, best_mask, best_count = t, m, c
            best_ids = None
        elif c == best_count:
            if best_ids is None:
                best_ids = bb_ids_of(best_mask)
            candidate_ids = bb_ids_of(m)
            if candidate_ids < best_ids:
                best_mask, best_ids = m, candidate_ids

    def could_update_shapes(
        j: int, t: int, c: int, r0: int, k_left: int
    ) -> bool:
        cmax = min(k_left, len_rest - j)
        for extra in range(1, cmax + 1):
            min_cycles = -(-(t + gain(j, extra)) // ratio)
            m = c + extra
            for r in distinct_rows:
                if r < r0:
                    continue
                incumbent = shape_best.get((m, r))
                if incumbent is None or min_cycles <= incumbent[0]:
                    return True
        return False

    def walk(j: int, t: int, m: int, c: int) -> None:
        nonlocal pruned
        if j == len_rest or stopped:
            return
        k_left = (budget - c) if budget is not None else len_rest - j
        if t + gain(j, k_left) - slack > best_total and not (
            could_update_shapes(j, t, c, rows_used(m), k_left)
        ):
            pruned += 1
            return
        if k_left > 0:
            i = rest[j]
            t2 = t + deltas[i]
            m2 = m | (1 << i)
            record(t2, m2, c + 1)
            consider(t2, m2, c + 1)
            walk(j + 1, t2, m2, c + 1)
        walk(j + 1, t, m, c)

    if mask:
        # A non-empty prefix is itself a visited configuration (the
        # all-FPGA mask 0 was already logged by the parent's run()).
        record(total, mask, count)
    else:
        _fold_shape(
            table, shape_best, decoded, -(-total // ratio),
            (0, 0), 0,
        )
    walk(0, total, mask, count)
    return ShardOutcome(
        shard=shard,
        visits=visits,
        pruned_subtrees=pruned,
        seconds=time.perf_counter() - started,
        best_total=best_total,
        best_count=best_count,
        best_mask=best_mask,
        ticks=cols_ticks,
        masks=cols_masks,
        shape_items=None if keep else tuple(shape_best.items()),
        partial=stopped,
    )


@register_algorithm
class ExhaustivePartitioner(Partitioner):
    """Optimal kernel subset by complete enumeration."""

    algorithm = "exhaustive"

    #: Default candidate caps when ``max_candidates`` is None, resolved
    #: per substrate and exact-search mode — 2^n is cheap on the Gray
    #: walk, cheaper still sharded across cores, and the
    #: branch-and-bound certifies far past what enumeration can visit;
    #: the object reference stays conservative.
    PACKED_DEFAULT_MAX_CANDIDATES = 24
    SHARDED_DEFAULT_MAX_CANDIDATES = 32
    PRUNED_DEFAULT_MAX_CANDIDATES = 40
    OBJECT_DEFAULT_MAX_CANDIDATES = 16

    def __init__(
        self,
        *args,
        max_candidates: int | None = None,
        shards: int | None = None,
        prune: bool = False,
        keep_visits: bool | None = None,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        if max_candidates is not None and max_candidates < 1:
            raise ValueError("max_candidates must be >= 1")
        if shards is not None and shards < 1:
            raise ValueError("shards must be >= 1")
        self.max_candidates = max_candidates
        #: Contiguous Gray-code segments to fan out (packed substrate).
        self.shards = shards
        #: Exact branch-and-bound instead of full enumeration.
        self.prune = prune
        #: None resolves per mode: sharded walks drop per-visit columns
        #: (a 2^32-scale walk cannot afford them), everything else
        #: keeps them.
        self.keep_visits = keep_visits
        #: Branch-and-bound subtrees cut by the additive bound.
        self.pruned_subtrees = 0
        #: Per-shard / per-B&B-task stats dicts, in merge order.
        self.shard_outcomes: list[dict[str, object]] = []
        #: Test hook: loosens the optimum bound by this many ticks (a
        #: worse bound can only explore more, never less — the
        #: monotonicity property the tests pin).
        self._bound_slack = 0
        #: (ordering key, subset, skipped ids) once enumerated; the
        #: optimum is constraint-independent so one enumeration serves
        #: every run() of a sweep.
        self._best: tuple[tuple, frozenset[int], list[int]] | None = None
        #: Packed equivalent: the optimal configuration bitmask.
        self._best_mask: int | None = None
        if max_candidates is not None:
            self._validate_candidate_count(max_candidates)

    def _validate_candidate_count(self, max_candidates: int) -> None:
        """Fail at construction, not deep inside the enumeration, when
        the workload's kernel count exceeds an explicit cap."""
        candidates = self.workload.kernel_candidates(self.weight_model)
        if len(candidates) <= max_candidates:
            return
        # Unsupported kernels never enter the enumeration, so only the
        # supported count can breach the cap; pricing through a
        # throwaway model keeps the lazily-built substrate (and the
        # config-freeze contract) untouched.
        probe = CostModel(self.workload, self.platform)
        supported = sum(
            1 for kernel in candidates if probe.contribution(kernel).supported
        )
        if supported > max_candidates:
            raise ValueError(
                f"workload {self.workload.name!r} has {supported} supported "
                f"kernel candidates, but max_candidates={max_candidates} "
                f"allows at most that many (2^{supported} subsets); raise "
                "max_candidates explicitly if you really want this"
            )

    def _candidate_cap(self) -> int:
        if self.max_candidates is not None:
            return self.max_candidates
        if self._uses_packed_substrate():
            if self.prune:
                return self.PRUNED_DEFAULT_MAX_CANDIDATES
            if self.shards is not None and self.shards > 1:
                return self.SHARDED_DEFAULT_MAX_CANDIDATES
            return self.PACKED_DEFAULT_MAX_CANDIDATES
        return self.OBJECT_DEFAULT_MAX_CANDIDATES

    # ------------------------------------------------------------------
    # Object substrate (differential reference)
    # ------------------------------------------------------------------
    def _enumerate(self) -> tuple[tuple, frozenset[int], list[int]]:
        if self._best is not None:
            return self._best
        if self.shards is not None or self.prune or (
            self.keep_visits is not None
        ):
            raise ValueError(
                "sharded / pruned / reduced-log exact search runs on the "
                "packed substrate only (EngineConfig.substrate='packed')"
            )
        supported, skipped = self._split_candidates()
        cap = self._candidate_cap()
        if len(supported) > cap:
            raise ValueError(
                f"{len(supported)} kernel candidates exceed the exhaustive "
                f"limit of {cap} (2^n subsets); raise "
                "max_candidates explicitly if you really want this"
            )
        budget = self.move_budget
        state = CostState(self.model)
        best_key = self._subset_key(state.total_ticks, state.moved)
        best_subset = frozenset()
        self._record_visited(state)
        deadline = self._deadline
        visits = 0
        stopped = False

        def walk(index: int) -> None:
            nonlocal best_key, best_subset, visits, stopped
            if index == len(supported) or stopped:
                return
            # Exclude branch first so the all-FPGA prefix is explored
            # without touching the state.
            walk(index + 1)
            if (budget is not None and len(state.moved) >= budget) or stopped:
                return
            bb_id = supported[index].bb_id
            state.apply_move(bb_id)
            self._record_visited(state)
            key = self._subset_key(state.total_ticks, state.moved)
            if key < best_key:
                best_key = key
                best_subset = frozenset(state.moved)
            visits += 1
            if (
                deadline is not None
                and not visits & DEADLINE_CHECK_MASK
                and deadline.expired()
            ):
                stopped = True
            walk(index + 1)
            state.revert_move(bb_id)

        walk(0)
        if stopped:
            self._mark_partial()
        self._best = (best_key, best_subset, skipped)
        return self._best

    # ------------------------------------------------------------------
    # Packed substrate
    # ------------------------------------------------------------------
    def _enumerate_packed(self) -> int:
        if self._best_mask is not None:
            return self._best_mask
        table = self._packed_table_checked()
        n = len(table)
        cap = self._candidate_cap()
        if n > cap:
            raise ValueError(
                f"{n} kernel candidates exceed the exhaustive "
                f"limit of {cap} (2^n subsets); raise "
                "max_candidates explicitly if you really want this"
            )
        budget = self.move_budget
        if budget is not None and budget >= n:
            budget = None
        keep = self.keep_visits
        if keep is None:
            keep = self.shards is None
        if not keep:
            self._packed_log.drop_visits(table)
        if self.prune:
            self._best_mask = self._branch_and_bound(n, budget, keep)
        elif self.shards is not None:
            if budget is not None:
                raise ValueError(
                    "a move budget combined with shards requires "
                    "prune=True (the sharded Gray walk enumerates the "
                    "full mask space)"
                )
            self._best_mask = self._sharded_walk(n, keep)
        elif budget is None:
            if keep:
                self._best_mask = self._gray_walk(n)
            else:
                self._best_mask = self._sharded_walk(n, keep)
        else:
            self._best_mask = self._budgeted_walk(n, budget)
        return self._best_mask

    def _resolve_workers(self, task_count: int) -> int:
        workers = self.config.search_workers
        if workers is None:
            workers = os.cpu_count() or 1
        return max(1, min(workers, task_count))

    def _absorb_outcomes(self, outcomes: list[ShardOutcome]) -> int:
        """Merge shard summaries in deterministic shard order; returns
        the globally optimal mask by the (ticks, moves, BB-tuple) key
        (the all-FPGA origin is the baseline, exactly as in the serial
        walk)."""
        table = self.table
        log = self._packed_log
        best_total = table.initial_ticks
        best_count = 0
        best_mask = 0
        best_ids: tuple[int, ...] | None = None
        for outcome in outcomes:
            if outcome.partial:
                self._mark_partial()
            if outcome.shape_items is None:
                log.absorb_columns(outcome.ticks, outcome.masks)
            else:
                log.absorb_reduced(outcome.visits, outcome.shape_items)
            telemetry.count("shard_merges")
            if outcome.pruned_subtrees:
                telemetry.count(
                    "pruned_subtrees", outcome.pruned_subtrees
                )
            self.pruned_subtrees += outcome.pruned_subtrees
            self.shard_outcomes.append(
                {
                    "shard": outcome.shard,
                    "visits": outcome.visits,
                    "pruned_subtrees": outcome.pruned_subtrees,
                    "seconds": outcome.seconds,
                    "configs_per_second": outcome.configs_per_second,
                }
            )
            if outcome.best_total is None:
                continue
            key = (outcome.best_total, outcome.best_count)
            if key < (best_total, best_count):
                best_total, best_count = key
                best_mask = outcome.best_mask
                best_ids = None
            elif key == (best_total, best_count) and (
                outcome.best_mask != best_mask
            ):
                if best_ids is None:
                    best_ids = table.bb_ids_of(best_mask)
                candidate_ids = table.bb_ids_of(outcome.best_mask)
                if candidate_ids < best_ids:
                    best_mask, best_ids = outcome.best_mask, candidate_ids
        return best_mask

    def _sharded_walk(self, n: int, keep: bool) -> int:
        """Fan the Gray-code walk out over contiguous code segments."""
        table = self.table
        shards = self.shards or 1
        codes = (1 << n) - 1  # codes 1 .. 2^n-1 (mask 0 is the origin)
        shards = max(1, min(shards, codes)) if codes else 1
        tasks = []
        for index in range(shards):
            lo = 1 + (codes * index) // shards
            hi = 1 + (codes * (index + 1)) // shards
            if lo < hi:
                tasks.append((table, index, lo, hi, keep, self._deadline))
        if not tasks:
            return 0
        outcomes, _ = map_tasks(
            _walk_shard,
            tasks,
            self._resolve_workers(len(tasks)),
            what="Gray-code shards",
        )
        return self._absorb_outcomes(outcomes)

    def _branch_and_bound(
        self, n: int, budget: int | None, keep: bool
    ) -> int:
        """Exact additive-bound B&B, optionally prefix-decomposed into
        2^s independent tasks over the s most-gainful kernels."""
        table = self.table
        shards = self.shards or 1
        s = 0
        while (1 << s) < shards and s < n:
            s += 1
        order = tuple(
            sorted(range(n), key=lambda i: (table.move_delta[i], i))
        )
        tasks = [
            (
                table, p, p, s, order, budget, keep,
                self._bound_slack, self._deadline,
            )
            for p in range(1 << s)
        ]
        outcomes, _ = map_tasks(
            _bb_shard,
            tasks,
            self._resolve_workers(len(tasks)),
            what="branch-and-bound tasks",
        )
        return self._absorb_outcomes(outcomes)

    def _gray_walk(self, n: int) -> int:
        """All 2^n subsets, one integer toggle per configuration.

        The all-FPGA mask 0 is the walk's origin and was already logged
        by ``run()``, so the loop records the remaining 2^n − 1 masks —
        Gray codes never repeat, so the log needs no dedup checks.
        """
        table = self.table
        deltas = table.move_delta
        delta_by_bit = {1 << i: deltas[i] for i in range(n)}
        log = self._packed_log
        # 2^n entries of boxed Python ints would dominate the walk's
        # memory (n=24 → ~1.3 GB); every value here fits int64 (n ≤ 62
        # bits of mask, tick totals bounded by initial ± Σ|delta|), so
        # swap the log's columns for packed int64 arrays up front.
        max_total = table.initial_ticks + sum(abs(d) for d in deltas)
        if n <= 62 and max_total < (1 << 62):
            from array import array

            log.ticks = array("q", log.ticks)
            log.masks = array("q", log.masks)
        append_ticks = log.ticks.append
        append_masks = log.masks.append
        total = table.initial_ticks
        best_total = total
        best_mask = 0
        best_count = 0
        best_ids: tuple[int, ...] | None = ()
        mask = 0
        deadline = self._deadline
        for code in range(1, 1 << n):
            if (
                deadline is not None
                and not code & DEADLINE_CHECK_MASK
                and deadline.expired()
            ):
                self._mark_partial()
                break
            bit = code & -code
            if mask & bit:
                total -= delta_by_bit[bit]
            else:
                total += delta_by_bit[bit]
            mask ^= bit
            append_ticks(total)
            append_masks(mask)
            if total > best_total:
                continue
            # Ties follow the object key: ticks, then fewer moves, then
            # the lexicographically smallest BB tuple (decoded lazily —
            # exact ties are rare).
            count = mask.bit_count()
            if total < best_total or count < best_count:
                best_total, best_mask, best_count = total, mask, count
                best_ids = None
            elif count == best_count:
                if best_ids is None:
                    best_ids = table.bb_ids_of(best_mask)
                candidate_ids = table.bb_ids_of(mask)
                if candidate_ids < best_ids:
                    best_mask, best_ids = mask, candidate_ids
        return best_mask

    def _budgeted_walk(self, n: int, budget: int) -> int:
        """Depth-first enumeration of the subsets within the budget."""
        table = self.table
        deltas = table.move_delta
        log = self._packed_log
        deadline = self._deadline
        visits = 0
        stopped = False
        best_total = table.initial_ticks
        best_mask = 0
        best_count = 0
        best_ids: tuple[int, ...] | None = ()

        def consider(total: int, mask: int, count: int) -> None:
            nonlocal best_total, best_mask, best_count, best_ids
            if total > best_total:
                return
            if total < best_total or count < best_count:
                best_total, best_mask, best_count = total, mask, count
                best_ids = None
            elif count == best_count:
                if best_ids is None:
                    best_ids = table.bb_ids_of(best_mask)
                candidate_ids = table.bb_ids_of(mask)
                if candidate_ids < best_ids:
                    best_mask, best_ids = mask, candidate_ids

        def walk(index: int, total: int, mask: int, count: int) -> None:
            nonlocal visits, stopped
            if index == n or stopped:
                return
            walk(index + 1, total, mask, count)
            if count >= budget or stopped:
                return
            total += deltas[index]
            mask |= 1 << index
            log.record_unchecked(total, mask)
            consider(total, mask, count + 1)
            visits += 1
            if (
                deadline is not None
                and not visits & DEADLINE_CHECK_MASK
                and deadline.expired()
            ):
                stopped = True
                return
            walk(index + 1, total, mask, count + 1)

        walk(0, table.initial_ticks, 0, 0)
        if stopped:
            self._mark_partial()
        return best_mask

    def _search(
        self, timing_constraint: int, result: PartitionResult
    ) -> None:
        if self._uses_packed_substrate():
            mask = self._enumerate_packed()
            self._fill_result_from_mask(result, mask, timing_constraint)
            return
        __, subset, skipped = self._enumerate()
        self._fill_result_from_subset(
            result, subset, timing_constraint, skipped
        )
