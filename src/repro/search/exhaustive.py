"""Exhaustive subset search — the ground truth the heuristics are judged
against.

Eq. 2 prices any kernel subset in O(1) per inclusion, so for small
candidate counts (the paper's applications have ≤ 8 meaningful kernels)
every subset can be enumerated outright.  On the packed substrate the
enumeration walks subsets in **Gray-code order**: consecutive codes
differ in exactly one bit, so stepping from one configuration to the
next is a single integer toggle — one addition to the running Eq. 2
total, two appends to the visited column log, no recursion, no object
churn.  That is what lets the packed default ``max_candidates`` cap sit
at 24 (16.7M subsets); the object substrate keeps its historical
default of 16 (its per-subset object churn makes 2^24 a
minutes-to-hours mistake, not a default) — an explicit
``max_candidates`` overrides either.  Under a move budget the packed
walk switches to a budget-pruned depth-first enumeration (visiting only
the subsets within the budget, like the object reference, instead of
all 2^n codes).

The object substrate keeps the original depth-first walk over
:class:`~repro.partition.costs.CostState` as the differential
reference.  Both substrates visit exactly the same subset set and pick
the same optimum — minimum total cycles, tie-broken by fewer moves then
lexicographic BB ids.
"""

from __future__ import annotations

from ..partition.costs import CostState
from ..partition.result import PartitionResult
from .base import Partitioner, register_algorithm


@register_algorithm
class ExhaustivePartitioner(Partitioner):
    """Optimal kernel subset by complete enumeration."""

    algorithm = "exhaustive"

    #: Default candidate caps when ``max_candidates`` is None, resolved
    #: per substrate — 2^n is cheap on the Gray walk, not on the object
    #: reference.
    PACKED_DEFAULT_MAX_CANDIDATES = 24
    OBJECT_DEFAULT_MAX_CANDIDATES = 16

    def __init__(self, *args, max_candidates: int | None = None, **kwargs):
        super().__init__(*args, **kwargs)
        if max_candidates is not None and max_candidates < 1:
            raise ValueError("max_candidates must be >= 1")
        self.max_candidates = max_candidates
        #: (ordering key, subset, skipped ids) once enumerated; the
        #: optimum is constraint-independent so one enumeration serves
        #: every run() of a sweep.
        self._best: tuple[tuple, frozenset[int], list[int]] | None = None
        #: Packed equivalent: the optimal configuration bitmask.
        self._best_mask: int | None = None

    def _candidate_cap(self) -> int:
        if self.max_candidates is not None:
            return self.max_candidates
        if self._uses_packed_substrate():
            return self.PACKED_DEFAULT_MAX_CANDIDATES
        return self.OBJECT_DEFAULT_MAX_CANDIDATES

    # ------------------------------------------------------------------
    # Object substrate (differential reference)
    # ------------------------------------------------------------------
    def _enumerate(self) -> tuple[tuple, frozenset[int], list[int]]:
        if self._best is not None:
            return self._best
        supported, skipped = self._split_candidates()
        cap = self._candidate_cap()
        if len(supported) > cap:
            raise ValueError(
                f"{len(supported)} kernel candidates exceed the exhaustive "
                f"limit of {cap} (2^n subsets); raise "
                "max_candidates explicitly if you really want this"
            )
        budget = self.move_budget
        state = CostState(self.model)
        best_key = self._subset_key(state.total_ticks, state.moved)
        best_subset = frozenset()
        self._record_visited(state)

        def walk(index: int) -> None:
            nonlocal best_key, best_subset
            if index == len(supported):
                return
            # Exclude branch first so the all-FPGA prefix is explored
            # without touching the state.
            walk(index + 1)
            if budget is not None and len(state.moved) >= budget:
                return
            bb_id = supported[index].bb_id
            state.apply_move(bb_id)
            self._record_visited(state)
            key = self._subset_key(state.total_ticks, state.moved)
            if key < best_key:
                best_key = key
                best_subset = frozenset(state.moved)
            walk(index + 1)
            state.revert_move(bb_id)

        walk(0)
        self._best = (best_key, best_subset, skipped)
        return self._best

    # ------------------------------------------------------------------
    # Packed substrate
    # ------------------------------------------------------------------
    def _enumerate_packed(self) -> int:
        if self._best_mask is not None:
            return self._best_mask
        table = self._packed_table_checked()
        n = len(table)
        cap = self._candidate_cap()
        if n > cap:
            raise ValueError(
                f"{n} kernel candidates exceed the exhaustive "
                f"limit of {cap} (2^n subsets); raise "
                "max_candidates explicitly if you really want this"
            )
        budget = self.move_budget
        if budget is None or budget >= n:
            self._best_mask = self._gray_walk(n)
        else:
            self._best_mask = self._budgeted_walk(n, budget)
        return self._best_mask

    def _gray_walk(self, n: int) -> int:
        """All 2^n subsets, one integer toggle per configuration.

        The all-FPGA mask 0 is the walk's origin and was already logged
        by ``run()``, so the loop records the remaining 2^n − 1 masks —
        Gray codes never repeat, so the log needs no dedup checks.
        """
        table = self.table
        deltas = table.move_delta
        delta_by_bit = {1 << i: deltas[i] for i in range(n)}
        log = self._packed_log
        # 2^n entries of boxed Python ints would dominate the walk's
        # memory (n=24 → ~1.3 GB); every value here fits int64 (n ≤ 62
        # bits of mask, tick totals bounded by initial ± Σ|delta|), so
        # swap the log's columns for packed int64 arrays up front.
        max_total = table.initial_ticks + sum(abs(d) for d in deltas)
        if n <= 62 and max_total < (1 << 62):
            from array import array

            log.ticks = array("q", log.ticks)
            log.masks = array("q", log.masks)
        append_ticks = log.ticks.append
        append_masks = log.masks.append
        total = table.initial_ticks
        best_total = total
        best_mask = 0
        best_count = 0
        best_ids: tuple[int, ...] | None = ()
        mask = 0
        for code in range(1, 1 << n):
            bit = code & -code
            if mask & bit:
                total -= delta_by_bit[bit]
            else:
                total += delta_by_bit[bit]
            mask ^= bit
            append_ticks(total)
            append_masks(mask)
            if total > best_total:
                continue
            # Ties follow the object key: ticks, then fewer moves, then
            # the lexicographically smallest BB tuple (decoded lazily —
            # exact ties are rare).
            count = mask.bit_count()
            if total < best_total or count < best_count:
                best_total, best_mask, best_count = total, mask, count
                best_ids = None
            elif count == best_count:
                if best_ids is None:
                    best_ids = table.bb_ids_of(best_mask)
                candidate_ids = table.bb_ids_of(mask)
                if candidate_ids < best_ids:
                    best_mask, best_ids = mask, candidate_ids
        return best_mask

    def _budgeted_walk(self, n: int, budget: int) -> int:
        """Depth-first enumeration of the subsets within the budget."""
        table = self.table
        deltas = table.move_delta
        log = self._packed_log
        best_total = table.initial_ticks
        best_mask = 0
        best_count = 0
        best_ids: tuple[int, ...] | None = ()

        def consider(total: int, mask: int, count: int) -> None:
            nonlocal best_total, best_mask, best_count, best_ids
            if total > best_total:
                return
            if total < best_total or count < best_count:
                best_total, best_mask, best_count = total, mask, count
                best_ids = None
            elif count == best_count:
                if best_ids is None:
                    best_ids = table.bb_ids_of(best_mask)
                candidate_ids = table.bb_ids_of(mask)
                if candidate_ids < best_ids:
                    best_mask, best_ids = mask, candidate_ids

        def walk(index: int, total: int, mask: int, count: int) -> None:
            if index == n:
                return
            walk(index + 1, total, mask, count)
            if count >= budget:
                return
            total += deltas[index]
            mask |= 1 << index
            log.record_unchecked(total, mask)
            consider(total, mask, count + 1)
            walk(index + 1, total, mask, count + 1)

        walk(0, table.initial_ticks, 0, 0)
        return best_mask

    def _search(
        self, timing_constraint: int, result: PartitionResult
    ) -> None:
        if self._uses_packed_substrate():
            mask = self._enumerate_packed()
            self._fill_result_from_mask(result, mask, timing_constraint)
            return
        __, subset, skipped = self._enumerate()
        self._fill_result_from_subset(
            result, subset, timing_constraint, skipped
        )
