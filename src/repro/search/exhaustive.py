"""Exhaustive subset search — the ground truth the heuristics are judged
against.

Eq. 2 prices any kernel subset in O(1) per inclusion, so for small
candidate counts (the paper's applications have ≤ 8 meaningful kernels)
every subset can be enumerated outright: a depth-first walk over the
include/exclude tree with :class:`~repro.partition.costs.CostState`'s
O(1) ``apply_move`` / ``revert_move`` at each branch.  The optimum —
minimum total cycles, tie-broken by fewer moves then lexicographic BB
ids — lower-bounds every heuristic, and the full visited log is the
exact Pareto surface of the instance.

Guarded by ``max_candidates`` (default 16): 2^n subsets is the point of
this algorithm, not an accident to stumble into.
"""

from __future__ import annotations

from ..partition.costs import CostState
from ..partition.result import PartitionResult
from .base import Partitioner, register_algorithm


@register_algorithm
class ExhaustivePartitioner(Partitioner):
    """Optimal kernel subset by complete enumeration."""

    algorithm = "exhaustive"

    def __init__(self, *args, max_candidates: int = 16, **kwargs):
        super().__init__(*args, **kwargs)
        if max_candidates < 1:
            raise ValueError("max_candidates must be >= 1")
        self.max_candidates = max_candidates
        #: (ordering key, subset, skipped ids) once enumerated; the
        #: optimum is constraint-independent so one enumeration serves
        #: every run() of a sweep.
        self._best: tuple[tuple, frozenset[int], list[int]] | None = None

    # ------------------------------------------------------------------
    def _enumerate(self) -> tuple[tuple, frozenset[int], list[int]]:
        if self._best is not None:
            return self._best
        supported, skipped = self._split_candidates()
        if len(supported) > self.max_candidates:
            raise ValueError(
                f"{len(supported)} kernel candidates exceed the exhaustive "
                f"limit of {self.max_candidates} (2^n subsets); raise "
                "max_candidates explicitly if you really want this"
            )
        budget = self.move_budget
        state = CostState(self.model)
        best_key = self._subset_key(state.total_ticks, state.moved)
        best_subset = frozenset()
        self._record_visited(state)

        def walk(index: int) -> None:
            nonlocal best_key, best_subset
            if index == len(supported):
                return
            # Exclude branch first so the all-FPGA prefix is explored
            # without touching the state.
            walk(index + 1)
            if budget is not None and len(state.moved) >= budget:
                return
            bb_id = supported[index].bb_id
            state.apply_move(bb_id)
            self._record_visited(state)
            key = self._subset_key(state.total_ticks, state.moved)
            if key < best_key:
                best_key = key
                best_subset = frozenset(state.moved)
            walk(index + 1)
            state.revert_move(bb_id)

        walk(0)
        self._best = (best_key, best_subset, skipped)
        return self._best

    def _search(
        self, timing_constraint: int, result: PartitionResult
    ) -> None:
        __, subset, skipped = self._enumerate()
        self._fill_result_from_subset(
            result, subset, timing_constraint, skipped
        )
