"""Pluggable partitioning algorithms with multi-objective analysis.

The paper prescribes one partitioner — the Figure 2 greedy kernel-move
loop.  This subsystem turns partitioning into a *search problem* over
kernel subsets, all algorithms sharing the O(1) incremental cost
substrate (:mod:`repro.partition.costs`):

* :class:`GreedyPartitioner` — the paper's loop, bit-identical to
  :class:`~repro.partition.engine.PartitioningEngine` results;
* :class:`ExhaustivePartitioner` — optimal over all kernel subsets for
  small candidate counts; the ground truth heuristics are judged against;
* :class:`MultiStartPartitioner` — randomized greedy restarts with
  seeded tie-breaking (never worse than unbounded greedy);
* :class:`AnnealingPartitioner` — simulated annealing over subsets with
  a configurable temperature schedule (greedy warm start, so also never
  worse than unbounded greedy).

Every partitioner logs each configuration it visits as a
:class:`VisitedConfiguration` with the three design objectives —
``(total_cycles, moved_kernel_count, cgc_rows_used)`` — and
:func:`pareto_front` reduces any visited set to its non-dominated
configurations.

Algorithms are named declaratively by :class:`AlgorithmSpec` (hashable,
picklable), which :mod:`repro.explore` grids use as a fourth design-
space axis next to workloads, platforms and constraints::

    from repro import paper_platform
    from repro.search import AlgorithmSpec, make_partitioner, pareto_front
    from repro.workloads import ofdm_workload

    partitioner = make_partitioner(
        AlgorithmSpec.annealing(seed=7), ofdm_workload(),
        paper_platform(1500, 2),
    )
    result = partitioner.run(timing_constraint=30_000)
    front = partitioner.pareto_front()
"""

from .annealing import AnnealingPartitioner
from .base import (
    ALGORITHM_NAMES,
    AlgorithmSpec,
    Partitioner,
    make_partitioner,
    register_algorithm,
)
from .exhaustive import ExhaustivePartitioner
from .greedy import GreedyPartitioner
from .multi_start import MultiStartPartitioner
from .pareto import (
    VisitedConfiguration,
    front_of_results,
    pareto_front,
    pareto_front_from_columns,
)

__all__ = [
    "ALGORITHM_NAMES",
    "AlgorithmSpec",
    "AnnealingPartitioner",
    "ExhaustivePartitioner",
    "GreedyPartitioner",
    "MultiStartPartitioner",
    "Partitioner",
    "VisitedConfiguration",
    "front_of_results",
    "make_partitioner",
    "pareto_front",
    "pareto_front_from_columns",
    "register_algorithm",
]
