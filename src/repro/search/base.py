"""The pluggable partitioning-algorithm protocol.

The paper prescribes one algorithm — the Figure 2 greedy kernel-move
loop.  This module generalizes it: a :class:`Partitioner` is anything
that searches the space of kernel subsets against the shared incremental
cost substrate (:class:`~repro.partition.costs.CostModel` /
:class:`~repro.partition.costs.CostState`) and returns the same
:class:`~repro.partition.result.PartitionResult` records the engine
produces, so every downstream consumer (reports, exploration grids,
benchmarks) works with any algorithm unchanged.

Algorithms are named by :class:`AlgorithmSpec` — a tiny, hashable,
picklable description that the :mod:`repro.explore` grids use as a
design-space axis and that builds the concrete partitioner on demand
(mirroring ``WorkloadSpec`` / ``PlatformSpec``).

Every partitioner also records each configuration it visits (total
cycles, moved-kernel count, peak CGC rows) for the multi-objective
analysis in :mod:`repro.search.pareto`.
"""

from __future__ import annotations

import dataclasses
from abc import ABC, abstractmethod
from dataclasses import dataclass

from .. import telemetry
from ..analysis.weights import WeightModel
from ..faults import Deadline
from ..partition.costs import CostModel, CostState, CostStats
from ..partition.engine import EngineConfig
from ..partition.packed import (
    SUBSTRATE_NAMES,
    PackedCostTable,
    PackedVisitLog,
)
from ..partition.result import PartitionResult
from ..partition.trajectory import commit_step
from ..partition.workload import ApplicationWorkload, BlockWorkload
from ..platform.soc import HybridPlatform
from .pareto import (
    VisitedConfiguration,
    pareto_front,
    pareto_front_from_best,
    pareto_front_from_columns,
)

#: Algorithm name -> partitioner class; populated by @register_algorithm.
_REGISTRY: dict[str, type["Partitioner"]] = {}

#: Names AlgorithmSpec accepts (static so spec validation does not depend
#: on which algorithm modules happen to be imported yet).
ALGORITHM_NAMES = ("greedy", "exhaustive", "multi_start", "annealing")


def register_algorithm(cls: type["Partitioner"]) -> type["Partitioner"]:
    """Class decorator adding a partitioner to the spec registry."""
    _REGISTRY[cls.algorithm] = cls
    return cls


@dataclass(frozen=True)
class AlgorithmSpec:
    """A buildable partitioning algorithm (a grid axis value).

    ``params`` are constructor keyword arguments of the algorithm class,
    stored as a sorted tuple so specs stay hashable and picklable.
    """

    name: str
    params: tuple[tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if self.name not in ALGORITHM_NAMES:
            raise ValueError(
                f"unknown algorithm {self.name!r}; expected one of "
                f"{ALGORITHM_NAMES}"
            )

    # ------------------------------------------------------------------
    # Factories
    # ------------------------------------------------------------------
    @classmethod
    def greedy(cls) -> "AlgorithmSpec":
        """The paper's Figure 2 loop (bit-identical to the engine)."""
        return cls(name="greedy")

    @classmethod
    def exhaustive(
        cls,
        max_candidates: int | None = None,
        shards: int | None = None,
        prune: bool = False,
    ) -> "AlgorithmSpec":
        """Optimal over all kernel subsets (ground truth, small inputs).

        ``max_candidates=None`` resolves per substrate and mode: 24 on
        the serial packed Gray-code enumeration (one integer toggle per
        configuration, so 16M subsets stay cheap), 32 when the walk is
        sharded across workers, 40 with the branch-and-bound pruner,
        and the historical 16 on the object reference (whose per-subset
        object churn makes 2^24 a minutes-to-hours mistake, not a
        default).  Pass an explicit cap to override any of them.

        ``shards`` splits the Gray-code mask space into that many
        contiguous worker segments (packed substrate only);  ``prune``
        switches to the exact additive-bound branch-and-bound.  Both
        produce results bit-identical to the serial unpruned walk.
        """
        return cls(
            name="exhaustive",
            params=tuple(
                sorted(
                    {
                        "max_candidates": max_candidates,
                        "shards": shards,
                        "prune": prune,
                    }.items()
                )
            ),
        )

    @classmethod
    def multi_start(
        cls, restarts: int = 8, seed: int = 0, jitter: float = 0.75
    ) -> "AlgorithmSpec":
        """Randomized greedy restarts with seeded tie-breaking."""
        merged = {"restarts": restarts, "seed": seed, "jitter": jitter}
        return cls(name="multi_start", params=tuple(sorted(merged.items())))

    @classmethod
    def annealing(
        cls,
        seed: int = 0,
        initial_temp: float | None = None,
        cooling: float = 0.9,
        temp_levels: int = 30,
        steps_per_temp: int | None = None,
    ) -> "AlgorithmSpec":
        """Simulated annealing over kernel subsets (O(1) tick deltas)."""
        merged = {
            "seed": seed,
            "initial_temp": initial_temp,
            "cooling": cooling,
            "temp_levels": temp_levels,
            "steps_per_temp": steps_per_temp,
        }
        return cls(name="annealing", params=tuple(sorted(merged.items())))

    @property
    def label(self) -> str:
        """Report/query key: the name plus any non-default parameters."""
        defaults = _SPEC_DEFAULTS[self.name]
        deviations = [
            f"{key}={value}"
            for key, value in self.params
            if defaults.get(key, object()) != value
        ]
        if not deviations:
            return self.name
        return self.name + "[" + ",".join(deviations) + "]"

    def build(
        self,
        workload: ApplicationWorkload,
        platform: HybridPlatform,
        weight_model: WeightModel | None = None,
        config: EngineConfig | None = None,
        packed_table: PackedCostTable | None = None,
    ) -> "Partitioner":
        """Construct the concrete partitioner for one (workload, platform).

        ``packed_table`` injects a pre-derived
        :class:`~repro.partition.packed.PackedCostTable` so grids /
        suites price a (workload, platform) pair once and share the
        table across every algorithm and constraint.
        """
        cls = _REGISTRY.get(self.name)
        if cls is None:  # pragma: no cover - registry is import-complete
            raise ValueError(f"algorithm {self.name!r} is not registered")
        return cls(
            workload,
            platform,
            weight_model=weight_model,
            config=config,
            packed_table=packed_table,
            **dict(self.params),
        )


#: Factory defaults per algorithm, consulted by AlgorithmSpec.label so a
#: default-valued parameter never changes the label.
_SPEC_DEFAULTS: dict[str, dict[str, object]] = {
    "greedy": {},
    "exhaustive": {"max_candidates": None, "shards": None, "prune": False},
    "multi_start": {"restarts": 8, "seed": 0, "jitter": 0.75},
    "annealing": {
        "seed": 0,
        "initial_temp": None,
        "cooling": 0.9,
        "temp_levels": 30,
        "steps_per_temp": None,
    },
}


def make_partitioner(
    spec: AlgorithmSpec,
    workload: ApplicationWorkload,
    platform: HybridPlatform,
    weight_model: WeightModel | None = None,
    config: EngineConfig | None = None,
    packed_table: PackedCostTable | None = None,
) -> "Partitioner":
    """Convenience wrapper around :meth:`AlgorithmSpec.build`."""
    return spec.build(workload, platform, weight_model, config, packed_table)


class Partitioner(ABC):
    """Base of every partitioning algorithm.

    Subclasses implement :meth:`_search`, which fills a pre-initialized
    all-FPGA :class:`PartitionResult` for one timing constraint.  The
    base class owns the shared pricing substrates, the early exit when
    the all-FPGA mapping already meets the constraint, the visited-
    configuration log, and the config freeze (algorithm state caches bake
    the config in, exactly like the engine's move trajectory).

    Two substrates price configurations (``EngineConfig.substrate``):

    * ``"packed"`` (default) — a
      :class:`~repro.partition.packed.PackedCostTable` of flat tick
      columns; subsets are int bitmasks and the visited log is a column
      store materialized lazily.  A pre-derived table can be injected
      via ``packed_table`` so one pricing pass serves a whole
      (algorithm × constraint) grid.
    * ``"object"`` — the :class:`CostModel` / :class:`CostState` object
      substrate, kept as the bit-identical differential reference.
    """

    #: Registry / report key; subclasses override.
    algorithm = "base"

    def __init__(
        self,
        workload: ApplicationWorkload,
        platform: HybridPlatform,
        weight_model: WeightModel | None = None,
        config: EngineConfig | None = None,
        packed_table: PackedCostTable | None = None,
    ):
        self.workload = workload
        self.platform = platform
        self.weight_model = weight_model or WeightModel()
        self.config = config or EngineConfig()
        self.stats = CostStats()
        self._model: CostModel | None = None
        #: Injected or lazily derived packed table.  An injected table
        #: must have been derived with the same weight model and pricing
        #: flags this partitioner runs under (the explore/suite layers
        #: guarantee that by keying their caches on them).
        self._table = packed_table
        self._visited_objects: list[VisitedConfiguration] = []
        self._visited_subsets: set[frozenset[int]] = set()
        self._packed_log = PackedVisitLog()
        self._materialized: list[VisitedConfiguration] | None = None
        self._config_snapshot: EngineConfig | None = None
        #: Cooperative budget for the current run (see :meth:`run`).
        self._deadline: Deadline | None = None
        #: Sticky truncation flag: once a run is cut short, the caches
        #: engines share across a sweep (best-so-far, walk frontiers)
        #: are incomplete, so every later result from this instance is
        #: also uncertified.
        self._partial = False

    @property
    def model(self) -> CostModel:
        """The pricing substrate, built lazily so the config flags it
        bakes in are the ones in force at the first run (mutations before
        then are honoured, exactly like the engine)."""
        if self._model is None:
            self._model = CostModel(
                self.workload,
                self.platform,
                charge_single_partition_reconfig=(
                    self.config.charge_single_partition_reconfig
                ),
                stats=self.stats,
            )
        return self._model

    @property
    def table(self) -> PackedCostTable:
        """The packed cost table (derived from :attr:`model` on first
        use unless one was injected)."""
        if self._table is None:
            self._table = PackedCostTable.from_model(
                self.model, self.weight_model
            )
        return self._table

    def _uses_packed_substrate(self) -> bool:
        """Whether this partitioner's hot loops run on the packed table.

        Resolved from the live config (frozen at the first run, so the
        answer is stable from then on).
        """
        substrate = self.config.substrate
        if substrate not in SUBSTRATE_NAMES:
            raise ValueError(
                f"unknown substrate {substrate!r}; expected one of "
                f"{SUBSTRATE_NAMES}"
            )
        return substrate == "packed"

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def initial_cycles(self) -> int:
        """All-FPGA execution time in FPGA cycles."""
        self._freeze_config()
        if self._uses_packed_substrate():
            return self.table.initial_cycles()
        return self.model.initial_cycles()

    def run(
        self,
        timing_constraint: int,
        deadline: Deadline | None = None,
    ) -> PartitionResult:
        """Search against a timing constraint in FPGA clock cycles.

        ``deadline`` is a cooperative :class:`~repro.faults.Deadline`
        budget: engines poll it at visit-batch boundaries and stop with
        their best-so-far when it expires, returning a result flagged
        ``partial=True`` (``certified`` False) instead of hanging.  The
        work performed before the cut is deterministic, so an expired
        run is reproducible — only *where* the cut lands depends on
        wall-clock speed.
        """
        if timing_constraint <= 0:
            raise ValueError("timing constraint must be positive")
        self._deadline = deadline
        # One span pair per run (search > algorithm name), never one per
        # visited configuration — telemetry stays off the hot loop.
        with telemetry.span("search"), telemetry.span(self.algorithm):
            visited_before = self.visited_count
            try:
                result = PartitionResult.all_fpga(
                    self.workload.name,
                    self.platform.name,
                    timing_constraint,
                    self.initial_cycles(),
                )
                # The all-FPGA corner is a configuration every algorithm
                # prices (minimal moves and rows — always on the front).
                if self._uses_packed_substrate():
                    self._packed_log.record(self.table.initial_ticks, 0)
                else:
                    self._record_visited(CostState(self.model))
                if result.constraint_met:
                    result.partial = self._partial
                    return result
                if deadline is not None and deadline.expired():
                    # Expired before any search: the all-FPGA corner is
                    # the best-so-far.
                    self._mark_partial()
                    result.partial = True
                    return result
                self._search(timing_constraint, result)
                result.partial = self._partial
                result.validate()
                return result
            finally:
                self._deadline = None
                telemetry.count(
                    "configs_visited", self.visited_count - visited_before
                )

    def sweep(
        self,
        constraints: list[int],
        deadline: Deadline | None = None,
    ) -> list[PartitionResult]:
        """Run at several constraints, sharing all cached state."""
        return [self.run(constraint, deadline) for constraint in constraints]

    @property
    def visited(self) -> list[VisitedConfiguration]:
        """Every distinct configuration priced so far.

        On the packed substrate this materializes the column log to
        :class:`VisitedConfiguration` records on demand (cached until
        new configurations are recorded); prefer :attr:`visited_count`
        or :meth:`pareto_front` when the records themselves are not
        needed.  A reduced log (``keep_visits=False``) has dropped the
        per-visit columns and raises — use :attr:`visited_count` /
        :meth:`pareto_front`, which both survive the reduction.
        """
        if not self._uses_packed_substrate():
            return self._visited_objects
        log = self._packed_log
        if not log.keep_visits:
            raise ValueError(
                "visited configurations were reduced away "
                "(keep_visits=False); use visited_count or pareto_front"
            )
        if self._materialized is None or len(self._materialized) != len(log):
            table = self.table
            ratio = table.clock_ratio
            rows_used = table.rows_used
            bb_ids_of = table.bb_ids_of
            algorithm = self.algorithm
            self._materialized = [
                VisitedConfiguration(
                    total_cycles=-(-ticks // ratio),
                    moved_kernel_count=mask.bit_count(),
                    cgc_rows_used=rows_used(mask),
                    moved_bb_ids=bb_ids_of(mask),
                    algorithm=algorithm,
                )
                for ticks, mask in log.entries()
            ]
        return self._materialized

    @property
    def visited_count(self) -> int:
        """``len(visited)`` without materializing the packed log."""
        if self._uses_packed_substrate():
            return len(self._packed_log)
        return len(self._visited_objects)

    def pareto_front(self) -> list[VisitedConfiguration]:
        """Non-dominated subset of everything visited so far."""
        if self._uses_packed_substrate():
            log = self._packed_log
            if not log.keep_visits:
                return pareto_front_from_best(
                    log.best_by_shape, self.table, self.algorithm
                )
            return pareto_front_from_columns(
                log.ticks, log.masks, self.table, self.algorithm
            )
        return pareto_front(self.visited)

    def subset_rows_used(self, bb_ids) -> int:
        """Peak CGC rows of a kernel subset (already-priced kernels)."""
        if self._uses_packed_substrate():
            return self.table.rows_used(self.table.mask_of(bb_ids))
        return max(
            (
                self.model.contribution_by_id(bb_id).cgc_rows
                for bb_id in bb_ids
            ),
            default=0,
        )

    # ------------------------------------------------------------------
    # Subclass interface
    # ------------------------------------------------------------------
    @abstractmethod
    def _search(
        self, timing_constraint: int, result: PartitionResult
    ) -> None:
        """Fill ``result`` (pre-initialized to the all-FPGA mapping)."""

    # ------------------------------------------------------------------
    # Shared machinery
    # ------------------------------------------------------------------
    def _deadline_expired(self) -> bool:
        """Poll the current run's cooperative budget (engines call this
        at visit-batch boundaries, never per visited configuration)."""
        return self._deadline is not None and self._deadline.expired()

    def _mark_partial(self) -> None:
        """Record that the current (and, via shared caches, every later)
        result from this instance is best-so-far, not certified."""
        self._partial = True
        telemetry.count("search_deadline_cuts")

    def _freeze_config(self) -> None:
        if self._config_snapshot is None:
            self._config_snapshot = dataclasses.replace(self.config)
        elif self.config != self._config_snapshot:
            raise ValueError(
                "EngineConfig mutated after the partitioner ran; build a "
                "new partitioner for a different configuration"
            )

    @property
    def move_budget(self) -> int | None:
        return self.config.max_kernels_moved

    def _split_candidates(self) -> tuple[list[BlockWorkload], list[int]]:
        """(supported kernels in Eq. 1 order, skipped unsupported ids).

        Mirrors the engine: unsupported kernels are skipped (recorded) or,
        with ``skip_unsupported_kernels=False``, rejected outright.
        """
        supported: list[BlockWorkload] = []
        skipped: list[int] = []
        for kernel in self.model.kernel_candidates(self.weight_model):
            if self.model.contribution(kernel).supported:
                supported.append(kernel)
            elif not self.config.skip_unsupported_kernels:
                raise ValueError(
                    f"kernel BB {kernel.bb_id} cannot execute on the "
                    "coarse-grain data-path"
                )
            else:
                skipped.append(kernel.bb_id)
        return supported, skipped

    def _record_visited(self, state: CostState) -> VisitedConfiguration:
        """Log the state's configuration (deduplicated by kernel subset).

        ``state.cgc_rows_used()`` is the O(1) running row max the state
        maintains through apply/revert — no per-visit recompute.
        """
        subset = frozenset(state.moved)
        config = VisitedConfiguration(
            total_cycles=state.total_cycles(),
            moved_kernel_count=len(state.moved),
            cgc_rows_used=state.cgc_rows_used(),
            moved_bb_ids=tuple(sorted(state.moved)),
            algorithm=self.algorithm,
        )
        if subset not in self._visited_subsets:
            self._visited_subsets.add(subset)
            self._visited_objects.append(config)
        return config

    def _packed_table_checked(self) -> PackedCostTable:
        """The packed table, after the strict unsupported-kernel check.

        Mirrors :meth:`_split_candidates`: with
        ``skip_unsupported_kernels=False`` the first unsupported kernel
        in the Eq. 1 candidate order is rejected outright.
        """
        table = self.table
        if table.skipped_bb_ids and not self.config.skip_unsupported_kernels:
            raise ValueError(
                f"kernel BB {table.skipped_bb_ids[0]} cannot execute on "
                "the coarse-grain data-path"
            )
        return table

    def _commit_step(
        self,
        result: PartitionResult,
        bb_id: int,
        ticks: tuple[int, int, int],
        timing_constraint: int,
    ) -> bool:
        """Append one committed move to ``result``; returns constraint_met.

        The engine's exact step bookkeeping
        (:func:`repro.partition.trajectory.commit_step`), so greedy
        results stay bit-identical and every algorithm's steps satisfy
        the single-rounding component invariant.
        """
        return commit_step(
            self.model, result, bb_id, ticks, timing_constraint
        )

    def _fill_result_from_subset(
        self,
        result: PartitionResult,
        subset: frozenset[int] | set[int],
        timing_constraint: int,
        skipped: list[int],
    ) -> None:
        """Replay a final kernel subset as a move sequence.

        Moves are applied in the canonical Eq. 1 order (descending total
        weight), so the step list reads like a greedy trace and the final
        cycle split is identical no matter which order the algorithm
        discovered the subset in (Eq. 2 is additive).
        """
        result.skipped_bb_ids.extend(skipped)
        state = CostState(self.model)
        for kernel in self.model.kernel_candidates(self.weight_model):
            if kernel.bb_id not in subset:
                continue
            state.apply_move(kernel.bb_id)
            self._commit_step(
                result, kernel.bb_id, state.ticks, timing_constraint
            )

    def _fill_result_from_mask(
        self,
        result: PartitionResult,
        mask: int,
        timing_constraint: int,
    ) -> None:
        """Replay a final configuration bitmask as a move sequence.

        The packed counterpart of :meth:`_fill_result_from_subset`:
        packed indices already are the canonical Eq. 1 order, and
        :func:`commit_step` prices through the table's identical
        single-rounding split, so both substrates produce the same
        step lists for the same subset.
        """
        table = self.table
        result.skipped_bb_ids.extend(table.skipped_bb_ids)
        fpga = table.initial_ticks
        cgc = comm = 0
        for index in range(len(table)):
            if mask >> index & 1:
                fpga -= table.fpga_ticks[index]
                cgc += table.cgc_ticks[index]
                comm += table.comm_ticks[index]
                commit_step(
                    table,
                    result,
                    table.bb_ids[index],
                    (fpga, cgc, comm),
                    timing_constraint,
                )

    @staticmethod
    def _subset_key(
        total_ticks: int, moved: set[int] | frozenset[int]
    ) -> tuple[int, int, tuple[int, ...]]:
        """Deterministic ordering key: cycles, then fewer moves, then ids."""
        return (total_ticks, len(moved), tuple(sorted(moved)))
