"""Randomized greedy restarts.

The greedy loop's one degree of freedom is its visit order: Eq. 1 weight
is a *predictor* of benefit, not benefit itself, so under a move budget
(or CGC area pressure) the canonical order can spend the budget on
heavy-but-barely-profitable kernels.  Multi-start reruns the greedy
accept-if-improving sweep ``restarts`` times — restart 0 uses the exact
paper order (so the result is never worse than unbounded greedy), every
later restart perturbs each kernel's weight by a seeded multiplicative
jitter before sorting — and keeps the best final configuration.

Fully deterministic for a given (seed, restarts, jitter).
"""

from __future__ import annotations

import random

from ..partition.costs import CostState
from ..partition.result import PartitionResult
from ..partition.workload import BlockWorkload
from .base import Partitioner, register_algorithm


@register_algorithm
class MultiStartPartitioner(Partitioner):
    """Best-of-N greedy sweeps over jittered kernel orders."""

    algorithm = "multi_start"

    def __init__(
        self,
        *args,
        restarts: int = 8,
        seed: int = 0,
        jitter: float = 0.75,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        if restarts < 1:
            raise ValueError("restarts must be >= 1")
        if not 0.0 <= jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        self.restarts = restarts
        self.seed = seed
        self.jitter = jitter
        self._best: tuple[tuple, frozenset[int], list[int]] | None = None
        self._best_mask: int | None = None

    # ------------------------------------------------------------------
    def _restart_order(
        self, supported: list[BlockWorkload], restart: int
    ) -> list[BlockWorkload]:
        """Visit order for one restart (restart 0 = the paper's order)."""
        if restart == 0:
            return supported
        rng = random.Random((self.seed * 0x9E3779B1 + restart) & 0xFFFFFFFF)
        noisy = {
            kernel.bb_id: kernel.total_weight(self.weight_model)
            * rng.uniform(1.0 - self.jitter, 1.0 + self.jitter)
            for kernel in supported
        }
        return sorted(supported, key=lambda k: (-noisy[k.bb_id], k.bb_id))

    def _explore(self) -> tuple[tuple, frozenset[int], list[int]]:
        if self._best is not None:
            return self._best
        supported, skipped = self._split_candidates()
        budget = self.move_budget
        best_key: tuple | None = None
        best_subset = frozenset()
        for restart in range(self.restarts):
            # Deadline poll per restart (a visit batch); restart 0
            # always runs, so the result is never worse than greedy.
            if restart and self._deadline_expired():
                self._mark_partial()
                break
            state = CostState(self.model)
            for kernel in self._restart_order(supported, restart):
                if budget is not None and len(state.moved) >= budget:
                    break
                if self.model.contribution(kernel).move_delta <= 0:
                    state.apply_move(kernel.bb_id)
                    self._record_visited(state)
            key = self._subset_key(state.total_ticks, state.moved)
            if best_key is None or key < best_key:
                best_key = key
                best_subset = frozenset(state.moved)
        assert best_key is not None
        self._best = (best_key, best_subset, skipped)
        return self._best

    def _explore_packed(self) -> int:
        """The same jittered restarts on packed columns.

        Restart ordering is bit-compatible with the object walk: packed
        indices are the Eq. 1 order the object version iterates, the
        jitter multiplies the same integer total weights with the same
        seeded RNG stream, and ties sort by BB id — so both substrates
        run every restart in the identical kernel order.
        """
        if self._best_mask is not None:
            return self._best_mask
        table = self._packed_table_checked()
        n = len(table)
        budget = self.move_budget
        deltas = table.move_delta
        bb_ids = table.bb_ids
        weights = table.weights
        log = self._packed_log
        best_key: tuple | None = None
        best_mask = 0
        for restart in range(self.restarts):
            # Deadline poll per restart (a visit batch); restart 0
            # always runs, so the result is never worse than greedy.
            if restart and self._deadline_expired():
                self._mark_partial()
                break
            if restart == 0:
                order = range(n)
            else:
                rng = random.Random(
                    (self.seed * 0x9E3779B1 + restart) & 0xFFFFFFFF
                )
                noisy = [
                    weights[i]
                    * rng.uniform(1.0 - self.jitter, 1.0 + self.jitter)
                    for i in range(n)
                ]
                order = sorted(
                    range(n), key=lambda i: (-noisy[i], bb_ids[i])
                )
            total = table.initial_ticks
            mask = 0
            count = 0
            for index in order:
                if budget is not None and count >= budget:
                    break
                if deltas[index] <= 0:
                    total += deltas[index]
                    mask |= 1 << index
                    count += 1
                    log.record(total, mask)
            key = (total, count, table.bb_ids_of(mask))
            if best_key is None or key < best_key:
                best_key = key
                best_mask = mask
        self._best_mask = best_mask
        return best_mask

    def _search(
        self, timing_constraint: int, result: PartitionResult
    ) -> None:
        if self._uses_packed_substrate():
            mask = self._explore_packed()
            self._fill_result_from_mask(result, mask, timing_constraint)
            return
        __, subset, skipped = self._explore()
        self._fill_result_from_subset(
            result, subset, timing_constraint, skipped
        )
