"""The paper's greedy kernel-move loop as a :class:`Partitioner`.

This is the Figure 2 / §3.4 algorithm behind the pluggable-algorithm
protocol.  The partitioner *delegates* to
:class:`~repro.partition.engine.PartitioningEngine` — the engine IS the
greedy algorithm — so results are bit-identical by construction, every
``EngineConfig`` flag keeps working (including the ``incremental=False``
full-rescan differential reference), and the constraint-independent
trajectory cache warm-starts sweeps exactly as before.  On top, each
committed configuration is logged for the Pareto analysis.
"""

from __future__ import annotations

from ..partition.costs import CostModel, CostState
from ..partition.engine import PartitioningEngine
from ..partition.result import PartitionResult
from .base import Partitioner, register_algorithm
from .pareto import VisitedConfiguration


@register_algorithm
class GreedyPartitioner(Partitioner):
    """Figure 2 greedy loop (engine delegate) behind the protocol."""

    algorithm = "greedy"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._engine: PartitioningEngine | None = None

    @property
    def engine(self) -> PartitioningEngine:
        if self._engine is None:
            self._engine = PartitioningEngine(
                self.workload, self.platform, self.weight_model, self.config
            )
            # Share the engine's pricing substrate and work counters so
            # cost caches are not duplicated and ``stats`` reflects the
            # real work (EngineStats is a CostStats superset).
            self._model = self._engine.cost_model
            self.stats = self._engine.stats
        return self._engine

    @property
    def model(self) -> CostModel:
        return self.engine.cost_model

    def initial_cycles(self) -> int:
        return self.engine.initial_cycles()

    def run(self, timing_constraint: int) -> PartitionResult:
        # The engine owns constraint validation, the config freeze, the
        # early exit and the loop itself.
        result = self.engine.run(timing_constraint)
        self._record_visited(CostState(self.model))  # all-FPGA corner
        self._record_steps(result)
        return result

    def _search(
        self, timing_constraint: int, result: PartitionResult
    ) -> None:  # pragma: no cover - run() delegates to the engine
        raise NotImplementedError("GreedyPartitioner delegates run()")

    def _record_steps(self, result: PartitionResult) -> None:
        """Log each committed configuration prefix as visited."""
        moved: list[int] = []
        rows = 0
        for step in result.steps:
            moved.append(step.moved_bb_id)
            rows = max(
                rows, self.model.contribution_by_id(step.moved_bb_id).cgc_rows
            )
            subset = frozenset(moved)
            if subset in self._visited_subsets:
                continue
            self._visited_subsets.add(subset)
            self.visited.append(
                VisitedConfiguration(
                    total_cycles=step.total_cycles,
                    moved_kernel_count=len(moved),
                    cgc_rows_used=rows,
                    moved_bb_ids=tuple(sorted(moved)),
                    algorithm=self.algorithm,
                )
            )
