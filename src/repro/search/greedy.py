"""The paper's greedy kernel-move loop as a :class:`Partitioner`.

This is the Figure 2 / §3.4 algorithm behind the pluggable-algorithm
protocol.  On the packed substrate it runs a
:class:`~repro.partition.packed.PackedGreedyTrajectory` — the identical
constraint-independent decision sequence computed on the packed columns
and replayed through the same
:func:`~repro.partition.trajectory.replay_entries` bookkeeping the
engine uses, so results stay bit-identical to the engine by shared
code, not by luck.  On the object substrate (or with
``EngineConfig.incremental=False``, which selects the engine's
full-rescan differential reference) the partitioner *delegates* to
:class:`~repro.partition.engine.PartitioningEngine` outright — the
engine IS the greedy algorithm — so every ``EngineConfig`` flag keeps
working.  On top, each committed configuration is logged for the Pareto
analysis.
"""

from __future__ import annotations

from .. import telemetry
from ..partition.costs import CostModel, CostState
from ..partition.engine import PartitioningEngine
from ..partition.packed import PackedGreedyTrajectory
from ..partition.result import PartitionResult
from ..partition.trajectory import replay_entries
from .base import Partitioner, register_algorithm
from .pareto import VisitedConfiguration


@register_algorithm
class GreedyPartitioner(Partitioner):
    """Figure 2 greedy loop behind the protocol (packed or engine)."""

    algorithm = "greedy"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._engine: PartitioningEngine | None = None
        self._packed_trajectory: PackedGreedyTrajectory | None = None

    def _uses_packed_substrate(self) -> bool:
        # incremental=False explicitly requests the engine's full-rescan
        # reference loop, which only exists on the object substrate.
        return super()._uses_packed_substrate() and self.config.incremental

    # ------------------------------------------------------------------
    # Object substrate: delegate to the engine
    # ------------------------------------------------------------------
    @property
    def engine(self) -> PartitioningEngine:
        if self._engine is None:
            self._engine = PartitioningEngine(
                self.workload, self.platform, self.weight_model, self.config
            )
            # Share the engine's pricing substrate and work counters so
            # cost caches are not duplicated and ``stats`` reflects the
            # real work (EngineStats is a CostStats superset).
            self._model = self._engine.cost_model
            self.stats = self._engine.stats
        return self._engine

    @property
    def model(self) -> CostModel:
        if self._uses_packed_substrate():
            return super().model
        return self.engine.cost_model

    def initial_cycles(self) -> int:
        if self._uses_packed_substrate():
            return super().initial_cycles()
        return self.engine.initial_cycles()

    def run(self, timing_constraint, deadline=None) -> PartitionResult:
        if self._uses_packed_substrate():
            return super().run(timing_constraint, deadline)
        # The engine owns constraint validation, the config freeze, the
        # early exit and the loop itself; span it like the base run() so
        # both paths report the same phase names.  Greedy is O(n) per
        # run, so the deadline is only honoured as a pre-check — an
        # already-expired budget returns the all-FPGA corner partial.
        with telemetry.span("search"), telemetry.span(self.algorithm):
            visited_before = self.visited_count
            if deadline is not None and deadline.expired():
                self._mark_partial()
                result = PartitionResult.all_fpga(
                    self.workload.name,
                    self.platform.name,
                    timing_constraint,
                    self.initial_cycles(),
                )
                result.partial = True
                self._record_visited(CostState(self.model))
                telemetry.count(
                    "configs_visited", self.visited_count - visited_before
                )
                return result
            result = self.engine.run(timing_constraint)
            result.partial = self._partial
            self._record_visited(CostState(self.model))  # all-FPGA corner
            self._record_steps(result)
            telemetry.count(
                "configs_visited", self.visited_count - visited_before
            )
        return result

    # ------------------------------------------------------------------
    # Packed substrate: trajectory on the table
    # ------------------------------------------------------------------
    @property
    def packed_trajectory(self) -> PackedGreedyTrajectory:
        if self._packed_trajectory is None:
            self._packed_trajectory = PackedGreedyTrajectory(
                self.table,
                skip_unsupported_kernels=(
                    self.config.skip_unsupported_kernels
                ),
                allow_regressing_moves=self.config.allow_regressing_moves,
            )
        return self._packed_trajectory

    def _search(
        self, timing_constraint: int, result: PartitionResult
    ) -> None:
        if not self._uses_packed_substrate():  # pragma: no cover
            raise NotImplementedError("GreedyPartitioner delegates run()")
        trajectory = self.packed_trajectory
        log = self._packed_log
        masks = trajectory.masks
        position = [0]  # entry cursor shared by the replay callbacks

        def advance(entry) -> None:
            position[0] += 1

        def committed(entry) -> None:
            log.record(entry.total_ticks, masks[position[0]])
            position[0] += 1

        replay_entries(
            self.table,
            trajectory.iter_entries(),
            result,
            timing_constraint,
            max_kernels_moved=self.config.max_kernels_moved,
            stop_at_constraint=self.config.stop_at_constraint,
            on_skipped=advance,
            on_reverted=advance,
            on_committed=committed,
        )

    def _record_steps(self, result: PartitionResult) -> None:
        """Log each committed configuration prefix as visited."""
        moved: list[int] = []
        rows = 0
        for step in result.steps:
            moved.append(step.moved_bb_id)
            rows = max(
                rows, self.model.contribution_by_id(step.moved_bb_id).cgc_rows
            )
            subset = frozenset(moved)
            if subset in self._visited_subsets:
                continue
            self._visited_subsets.add(subset)
            self._visited_objects.append(
                VisitedConfiguration(
                    total_cycles=step.total_cycles,
                    moved_kernel_count=len(moved),
                    cgc_rows_used=rows,
                    moved_bb_ids=tuple(sorted(moved)),
                    algorithm=self.algorithm,
                )
            )
