"""Simulated annealing over kernel subsets.

Each step toggles one kernel in or out of the coarse-grain set (or, at
the move budget, swaps one in for one out), priced in O(1) ticks by
:class:`~repro.partition.costs.CostState`.  Improving steps are always
taken; worsening steps with probability ``exp(-delta / T)`` under a
geometric temperature schedule.  The walk starts from the greedy
solution and the best configuration ever seen is returned, so annealing
is never worse than unbounded greedy — it can only escape the weight-
order traps greedy falls into under budgets or skewed workloads.

The temperature schedule lives in the spec/constructor parameters
(``initial_temp``, ``cooling``, ``temp_levels``, ``steps_per_temp``);
``initial_temp=None`` self-scales to the largest single-move |delta| so
early steps accept almost anything.  Fully deterministic per seed.
"""

from __future__ import annotations

import math
import random

from ..partition.costs import CostState
from ..partition.result import PartitionResult
from .base import Partitioner, register_algorithm


@register_algorithm
class AnnealingPartitioner(Partitioner):
    """Simulated annealing with a geometric cooling schedule."""

    algorithm = "annealing"

    def __init__(
        self,
        *args,
        seed: int = 0,
        initial_temp: float | None = None,
        cooling: float = 0.9,
        temp_levels: int = 30,
        steps_per_temp: int | None = None,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        if not 0.0 < cooling < 1.0:
            raise ValueError("cooling must be in (0, 1)")
        if temp_levels < 1:
            raise ValueError("temp_levels must be >= 1")
        if initial_temp is not None and initial_temp <= 0.0:
            raise ValueError("initial_temp must be positive")
        if steps_per_temp is not None and steps_per_temp < 1:
            raise ValueError("steps_per_temp must be >= 1")
        self.seed = seed
        self.initial_temp = initial_temp
        self.cooling = cooling
        self.temp_levels = temp_levels
        self.steps_per_temp = steps_per_temp
        self._best: tuple[tuple, frozenset[int], list[int]] | None = None
        self._best_mask: int | None = None

    # ------------------------------------------------------------------
    def _start_temperature(self, deltas: list[int]) -> float:
        if self.initial_temp is not None:
            return self.initial_temp
        scale = max((abs(delta) for delta in deltas), default=1)
        return float(max(scale, 1))

    def _anneal(self) -> tuple[tuple, frozenset[int], list[int]]:
        if self._best is not None:
            return self._best
        supported, skipped = self._split_candidates()
        budget = self.move_budget
        rng = random.Random((self.seed * 0x5DEECE66D + 0xB) & 0xFFFFFFFFFFFF)
        state = CostState(self.model)
        # Greedy warm start: the best-seen tracker therefore starts at
        # the greedy solution and can only improve on it.
        for kernel in supported:
            if budget is not None and len(state.moved) >= budget:
                break
            if self.model.contribution(kernel).move_delta <= 0:
                state.apply_move(kernel.bb_id)
        self._record_visited(state)
        best_key = self._subset_key(state.total_ticks, state.moved)
        best_subset = frozenset(state.moved)

        candidates = [kernel.bb_id for kernel in supported]
        if not candidates or (budget is not None and budget <= 0):
            # Nothing to toggle (or a zero budget: no swap partner
            # exists either) — the greedy start is the answer.
            self._best = (best_key, best_subset, skipped)
            return self._best
        deltas = [
            self.model.contribution(kernel).move_delta
            for kernel in supported
        ]
        temperature = self._start_temperature(deltas)
        steps = self.steps_per_temp or max(8, 4 * len(candidates))

        def accept(delta: int) -> bool:
            if delta <= 0:
                return True
            return rng.random() < math.exp(-delta / temperature)

        for _level in range(self.temp_levels):
            # Deadline poll per temperature level (a visit batch): an
            # expired budget keeps the best-so-far, never mid-level.
            if self._deadline_expired():
                self._mark_partial()
                break
            for _step in range(steps):
                bb_id = candidates[rng.randrange(len(candidates))]
                if bb_id in state.moved:
                    if accept(state.propose_move(bb_id)):
                        state.revert_move(bb_id)
                    else:
                        continue
                elif budget is not None and len(state.moved) >= budget:
                    # At the budget boundary toggling in is illegal, so
                    # propose a swap: one kernel out, this one in.
                    out_id = sorted(state.moved)[rng.randrange(len(state.moved))]
                    delta = state.propose_move(bb_id) + state.propose_move(out_id)
                    if accept(delta):
                        state.revert_move(out_id)
                        state.apply_move(bb_id)
                    else:
                        continue
                else:
                    if accept(state.propose_move(bb_id)):
                        state.apply_move(bb_id)
                    else:
                        continue
                self._record_visited(state)
                key = self._subset_key(state.total_ticks, state.moved)
                if key < best_key:
                    best_key = key
                    best_subset = frozenset(state.moved)
            temperature *= self.cooling
        self._best = (best_key, best_subset, skipped)
        return self._best

    def _anneal_packed(self) -> int:
        """The identical annealing walk on packed columns.

        RNG consumption mirrors the object walk step for step — same
        seed transform, same candidate indexing, same accept calls on
        the same integer deltas — so both substrates take the same
        trajectory and settle on the same best subset.
        """
        if self._best_mask is not None:
            return self._best_mask
        table = self._packed_table_checked()
        n = len(table)
        budget = self.move_budget
        deltas = table.move_delta
        rng = random.Random((self.seed * 0x5DEECE66D + 0xB) & 0xFFFFFFFFFFFF)
        log = self._packed_log
        total = table.initial_ticks
        mask = 0
        count = 0
        # Greedy warm start (Eq. 1 order = packed index order).
        for index in range(n):
            if budget is not None and count >= budget:
                break
            if deltas[index] <= 0:
                total += deltas[index]
                mask |= 1 << index
                count += 1
        log.record(total, mask)
        best_total, best_mask, best_count = total, mask, count
        best_ids: tuple[int, ...] | None = None

        if n == 0 or (budget is not None and budget <= 0):
            self._best_mask = best_mask
            return best_mask
        temperature = self._start_temperature(list(deltas))
        steps = self.steps_per_temp or max(8, 4 * n)

        # Hot loop: bound locals, an inlined accept test, and an inlined
        # ``randrange`` (CPython's ``_randbelow_with_getrandbits``
        # verbatim, so the random stream is bit-identical to the object
        # walk's ``rng.randrange`` calls while skipping two Python call
        # layers per step).  The RNG call sequence (randrange per step,
        # random only on positive deltas) matches the object walk
        # exactly.
        getrandbits = rng.getrandbits
        uniform = rng.random
        exp = math.exp
        record = log.record
        bb_ids_of = table.bb_ids_of
        index_of = table.index_of
        n_bits = n.bit_length()
        for _level in range(self.temp_levels):
            # Deadline poll per temperature level (a visit batch): an
            # expired budget keeps the best-so-far, never mid-level.
            if self._deadline_expired():
                self._mark_partial()
                break
            for _step in range(steps):
                index = getrandbits(n_bits)
                while index >= n:
                    index = getrandbits(n_bits)
                bit = 1 << index
                if mask & bit:
                    delta = -deltas[index]
                    if delta <= 0 or uniform() < exp(-delta / temperature):
                        total += delta
                        mask ^= bit
                        count -= 1
                    else:
                        continue
                elif budget is not None and count >= budget:
                    # At the budget boundary toggling in is illegal, so
                    # propose a swap: one kernel out, this one in.
                    out = getrandbits(count.bit_length())
                    while out >= count:
                        out = getrandbits(count.bit_length())
                    out_index = index_of(bb_ids_of(mask)[out])
                    delta = deltas[index] - deltas[out_index]
                    if delta <= 0 or uniform() < exp(-delta / temperature):
                        total += delta
                        mask ^= bit | (1 << out_index)
                    else:
                        continue
                else:
                    delta = deltas[index]
                    if delta <= 0 or uniform() < exp(-delta / temperature):
                        total += delta
                        mask |= bit
                        count += 1
                    else:
                        continue
                record(total, mask)
                if total > best_total:
                    continue
                if total < best_total or count < best_count:
                    best_total, best_mask, best_count = total, mask, count
                    best_ids = None
                elif count == best_count:
                    if best_ids is None:
                        best_ids = bb_ids_of(best_mask)
                    candidate_ids = bb_ids_of(mask)
                    if candidate_ids < best_ids:
                        best_mask, best_ids = mask, candidate_ids
            temperature *= self.cooling
        self._best_mask = best_mask
        return best_mask

    def _search(
        self, timing_constraint: int, result: PartitionResult
    ) -> None:
        if self._uses_packed_substrate():
            mask = self._anneal_packed()
            self._fill_result_from_mask(result, mask, timing_constraint)
            return
        __, subset, skipped = self._anneal()
        self._fill_result_from_subset(
            result, subset, timing_constraint, skipped
        )
