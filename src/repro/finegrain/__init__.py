"""Fine-grain (FPGA) mapping: temporal partitioning and timing (paper §3.2)."""

from .asap import (
    LevelSummary,
    dfg_total_area,
    nodes_in_level_order,
    summarize_levels,
    widest_node_area,
)
from .bitstream import (
    BYTES_PER_AREA_UNIT,
    ConfigurationBitstream,
    HEADER_BYTES,
    generate_bitstreams,
    total_configuration_bytes,
    unique_streams,
)
from .device import FPGADevice
from .temporal import (
    TemporalPartition,
    TemporalPartitioning,
    TemporalPartitioningError,
    partition_dfg,
)
from .timing import (
    FineGrainBlockTiming,
    application_fpga_cycles,
    block_fpga_timing,
    partition_execution_cycles,
)

__all__ = [
    "BYTES_PER_AREA_UNIT",
    "ConfigurationBitstream",
    "FineGrainBlockTiming",
    "FPGADevice",
    "HEADER_BYTES",
    "LevelSummary",
    "TemporalPartition",
    "TemporalPartitioning",
    "TemporalPartitioningError",
    "application_fpga_cycles",
    "block_fpga_timing",
    "dfg_total_area",
    "generate_bitstreams",
    "nodes_in_level_order",
    "partition_dfg",
    "partition_execution_cycles",
    "summarize_levels",
    "total_configuration_bytes",
    "unique_streams",
    "widest_node_area",
]
