"""Fine-grain (embedded FPGA) device model.

The paper's fine-grain fabric is an embedded FPGA with 1–2 bit granularity
CLBs.  For the mapping algorithm only two figures matter: the area budget
``A_FPGA`` available to DFG operations — "a percentage of the total FPGA
area; a typical value is a 70%" to keep routing feasible (§3.2) — and the
full-reconfiguration penalty charged to every temporal partition.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FPGADevice:
    """One fine-grain reconfigurable device.

    ``total_area`` is the physical fabric size in abstract area units;
    ``usable_fraction`` models the routing headroom, so the mapper budget is
    ``usable_area = floor(total_area × usable_fraction)``.
    """

    total_area: int
    usable_fraction: float = 0.70
    reconfig_cycles: int = 20
    name: str = "embedded-fpga"

    def __post_init__(self) -> None:
        if self.total_area <= 0:
            raise ValueError("total_area must be positive")
        if not 0.0 < self.usable_fraction <= 1.0:
            raise ValueError("usable_fraction must be in (0, 1]")
        if self.reconfig_cycles < 0:
            raise ValueError("reconfig_cycles cannot be negative")

    @property
    def usable_area(self) -> int:
        """The A_FPGA available to DFG nodes (Figure 3's area budget)."""
        return int(self.total_area * self.usable_fraction)

    @classmethod
    def from_usable_area(
        cls,
        usable_area: int,
        usable_fraction: float = 0.70,
        reconfig_cycles: int = 20,
        name: str = "embedded-fpga",
    ) -> "FPGADevice":
        """Build a device whose mapper budget equals ``usable_area``.

        The paper quotes A_FPGA directly (1500 and 5000 units in §4); this
        constructor back-computes a physical size so that
        ``device.usable_area == usable_area`` exactly.
        """
        if usable_area <= 0:
            raise ValueError("usable_area must be positive")
        total = int(-(-usable_area // usable_fraction))  # ceil
        while int(total * usable_fraction) < usable_area:
            total += 1
        device = cls(
            total_area=total,
            usable_fraction=usable_fraction,
            reconfig_cycles=reconfig_cycles,
            name=name,
        )
        # Trim any overshoot introduced by flooring.
        if device.usable_area != usable_area:
            # Adjust by expressing the budget exactly through the fraction.
            device = cls(
                total_area=usable_area,
                usable_fraction=1.0,
                reconfig_cycles=reconfig_cycles,
                name=name,
            )
        return device
