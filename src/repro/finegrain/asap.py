"""ASAP-level utilities for the fine-grain mapper (paper §3.2).

"The mapping methodology classifies the nodes in the DFG of the input
application according to their As Soon As Possible (ASAP) levels.  The ASAP
levels expose the parallelism hidden in the DFG."  The DFG itself computes
the levels; this module provides the level-ordered traversals and per-level
summaries the temporal partitioner and the timing model consume.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.dfg import DataFlowGraph, DFGNode
from ..platform.characterization import HardwareCharacterization


def nodes_in_level_order(dfg: DataFlowGraph) -> list[DFGNode]:
    """All DFG nodes ordered by (ASAP level, node id).

    This is the traversal order of the Figure 3 algorithm: "the algorithm
    traverses each node of the DFG, level by level".  Ties within a level
    are broken by node id for determinism.
    """
    asap = dfg.asap_levels()
    return sorted(dfg.nodes, key=lambda node: (asap[node.node_id], node.node_id))


@dataclass(frozen=True)
class LevelSummary:
    """Area/delay summary of one ASAP level."""

    level: int
    node_count: int
    total_area: int
    max_delay: int


def summarize_levels(
    dfg: DataFlowGraph, characterization: HardwareCharacterization
) -> list[LevelSummary]:
    """Per-level node counts, areas and critical delays."""
    summaries: list[LevelSummary] = []
    for index, nodes in enumerate(dfg.levels(), start=1):
        total_area = sum(
            characterization.fpga_area(node.opcode) for node in nodes
        )
        max_delay = max(
            (characterization.fpga_delay(node.opcode) for node in nodes),
            default=0,
        )
        summaries.append(LevelSummary(index, len(nodes), total_area, max_delay))
    return summaries


def dfg_total_area(
    dfg: DataFlowGraph, characterization: HardwareCharacterization
) -> int:
    """Total fine-grain area of every node in the DFG."""
    return sum(characterization.fpga_area(node.opcode) for node in dfg.nodes)


def widest_node_area(
    dfg: DataFlowGraph, characterization: HardwareCharacterization
) -> int:
    """Largest single-node area — a lower bound on the feasible A_FPGA."""
    return max(
        (characterization.fpga_area(node.opcode) for node in dfg.nodes),
        default=0,
    )
