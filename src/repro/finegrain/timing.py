"""Execution-time model for the fine-grain mapping (Eq. 4 of the paper).

Per basic block::

    t_to_FPGA(BB) = Σ_partitions [ reconfig_cycles + Σ_levels max_delay ]

Nodes of the same ASAP level inside one partition execute in parallel, so a
level costs the maximum delay among its nodes present in that partition
(levels whose nodes all live in other partitions cost nothing here).  Every
temporal partition pays the full-reconfiguration penalty, exactly as §3.2
states: "the reconfiguration time has the same value for each partition and
it is added to the execution time of each temporal partition."

Configuration caching: when a block fits in a *single* temporal partition,
its configuration persists in the device across the block's (typically
loop-iterated) invocations, so no per-invocation reconfiguration is charged
— only multi-partition blocks must swap configurations every invocation.
This caching is what makes a larger A_FPGA reduce the all-FPGA cycle count
(the paper's Tables 2/3 first row) and is the behaviour behind the paper's
observation that "as the FPGA area grows, the reduction of clock cycles is
smaller".  Set ``charge_single_partition=True`` to disable caching (the
ablation benchmarks exercise both policies).

Whole-application time (Eq. 4)::

    t_FPGA = Σ_i t_to_FPGA(BB_i) × Iter(BB_i)
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.dfg import DataFlowGraph
from ..platform.characterization import HardwareCharacterization
from .device import FPGADevice
from .temporal import TemporalPartitioning, partition_dfg


@dataclass(frozen=True)
class FineGrainBlockTiming:
    """Timing breakdown of one basic block mapped on the FPGA."""

    compute_cycles: int
    reconfig_cycles: int
    partition_count: int

    @property
    def total_cycles(self) -> int:
        return self.compute_cycles + self.reconfig_cycles


def partition_execution_cycles(
    partitioning: TemporalPartitioning,
    characterization: HardwareCharacterization,
) -> list[int]:
    """Pure compute cycles of each partition (no reconfiguration)."""
    dfg = partitioning.dfg
    asap = dfg.asap_levels()
    cycles: list[int] = []
    for partition in partitioning.partitions:
        by_level: dict[int, int] = {}
        for node_id in partition.node_ids:
            node = dfg.node(node_id)
            delay = characterization.fpga_delay(node.opcode)
            level = asap[node_id]
            if delay > by_level.get(level, 0):
                by_level[level] = delay
        cycles.append(sum(by_level.values()))
    return cycles


def block_fpga_timing(
    dfg: DataFlowGraph,
    device: FPGADevice,
    characterization: HardwareCharacterization,
    charge_single_partition: bool = False,
) -> FineGrainBlockTiming:
    """Map one block (Figure 3) and price it (Eq. 4 inner term)."""
    partitioning = partition_dfg(dfg, device.usable_area, characterization)
    per_partition = partition_execution_cycles(partitioning, characterization)
    compute = sum(per_partition)
    count = partitioning.partition_count
    if count > 1 or charge_single_partition:
        reconfig = count * device.reconfig_cycles
    else:
        reconfig = 0
    return FineGrainBlockTiming(
        compute_cycles=compute,
        reconfig_cycles=reconfig,
        partition_count=count,
    )


def application_fpga_cycles(
    block_timings: dict[int, FineGrainBlockTiming],
    iterations: dict[int, int],
) -> int:
    """Eq. 4: Σ t_to_FPGA(BB_i) × Iter(BB_i) over the given blocks."""
    total = 0
    for bb_id, timing in block_timings.items():
        total += timing.total_cycles * iterations.get(bb_id, 0)
    return total
