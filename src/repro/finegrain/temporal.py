"""Temporal partitioning of DFGs onto the fine-grain fabric.

This is a faithful implementation of the paper's Figure 3 algorithm:

* nodes are visited level by level (ASAP order);
* each node is appended to the current partition while the accumulated
  area fits in ``A_FPGA``; when it does not, a new partition is opened and
  the node starts it;
* execution is mutually exclusive across partitions: each partition is a
  full-reconfiguration context of the device, with boundary values staged
  through the shared data memory.

Note: the pseudocode in Figure 3 places ``level = level + 1`` inside the
``for`` loop, which would skip levels; the surrounding prose ("If the nodes
in the current ASAP level are all assigned to a partition, then the next
level nodes are considered") makes the intent unambiguous, so we increment
after the per-level sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.dfg import DataFlowGraph
from ..platform.characterization import HardwareCharacterization
from .asap import nodes_in_level_order, widest_node_area


class TemporalPartitioningError(ValueError):
    """Raised when a DFG node cannot fit into the fabric at all."""


@dataclass
class TemporalPartition:
    """One FPGA configuration: the node ids mapped into it and their area."""

    index: int
    node_ids: list[int] = field(default_factory=list)
    area_used: int = 0

    @property
    def node_count(self) -> int:
        return len(self.node_ids)


@dataclass
class TemporalPartitioning:
    """Result of partitioning one DFG: partition list + assignment map."""

    dfg: DataFlowGraph
    area_budget: int
    partitions: list[TemporalPartition] = field(default_factory=list)
    assignment: dict[int, int] = field(default_factory=dict)

    @property
    def partition_count(self) -> int:
        return len(self.partitions)

    def partition_of(self, node_id: int) -> int:
        return self.assignment[node_id]

    def validate(self, characterization: HardwareCharacterization) -> None:
        """Check the Figure 3 invariants.

        * every node is assigned exactly once;
        * no partition exceeds the area budget;
        * partition indices never decrease along increasing ASAP levels
          (the algorithm only ever opens new partitions going forward);
        * data dependencies never point from a later partition to an
          earlier one (stable inputs guaranteed by level-order execution).
        """
        assigned = set(self.assignment)
        expected = {node.node_id for node in self.dfg.nodes}
        if assigned != expected:
            raise AssertionError(
                f"assignment covers {len(assigned)} nodes, expected "
                f"{len(expected)}"
            )
        for partition in self.partitions:
            area = sum(
                characterization.fpga_area(self.dfg.node(n).opcode)
                for n in partition.node_ids
            )
            if area != partition.area_used:
                raise AssertionError(
                    f"partition {partition.index} records area "
                    f"{partition.area_used}, actual {area}"
                )
            if area > self.area_budget:
                raise AssertionError(
                    f"partition {partition.index} exceeds the budget: "
                    f"{area} > {self.area_budget}"
                )
        asap = self.dfg.asap_levels()
        order = sorted(
            self.dfg.nodes, key=lambda node: (asap[node.node_id], node.node_id)
        )
        last_partition = 0
        for node in order:
            partition = self.assignment[node.node_id]
            if partition < last_partition:
                raise AssertionError(
                    "partition index decreased along level order"
                )
            last_partition = partition
        for src, dst in self.dfg.graph.edges():
            if self.assignment[src] > self.assignment[dst]:
                raise AssertionError(
                    f"dependency {src}->{dst} crosses partitions backwards"
                )


def partition_dfg(
    dfg: DataFlowGraph,
    area_budget: int,
    characterization: HardwareCharacterization,
) -> TemporalPartitioning:
    """Run the Figure 3 algorithm on one DFG.

    Raises :class:`TemporalPartitioningError` if any single node is larger
    than the budget (it could never be placed).
    """
    if area_budget <= 0:
        raise TemporalPartitioningError("area budget must be positive")
    widest = widest_node_area(dfg, characterization)
    if widest > area_budget:
        raise TemporalPartitioningError(
            f"a DFG node needs {widest} area units but only "
            f"{area_budget} are available"
        )

    result = TemporalPartitioning(dfg, area_budget)
    if not dfg.nodes:
        return result

    current = TemporalPartition(index=1)
    result.partitions.append(current)
    area_covered = 0
    for node in nodes_in_level_order(dfg):
        node_area = characterization.fpga_area(node.opcode)
        if area_covered + node_area <= area_budget:
            current.node_ids.append(node.node_id)
            current.area_used += node_area
            area_covered += node_area
        else:
            current = TemporalPartition(index=current.index + 1)
            result.partitions.append(current)
            current.node_ids.append(node.node_id)
            current.area_used = node_area
            area_covered = node_area
        result.assignment[node.node_id] = current.index
    return result
