"""Configuration bit-stream synthesis for temporal partitions.

"For each temporal segment a configuration bit-stream is generated.
According to the application's data- and control-flow, the appropriate
configuration bit-stream is loaded to the FPGA device" (§3.2).  We generate
a deterministic pseudo-bitstream per partition — enough to exercise the
reconfiguration scheduling path (which stream loads when, and how large it
is) without modelling a vendor bit format.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from ..platform.characterization import HardwareCharacterization
from .temporal import TemporalPartitioning

#: Configuration payload per area unit, in bytes.  Loosely modelled on
#: LUT-fabric configuration densities; only relative sizes matter here.
BYTES_PER_AREA_UNIT = 16

#: Fixed per-stream header (command words, frame addresses, CRC).
HEADER_BYTES = 64


@dataclass(frozen=True)
class ConfigurationBitstream:
    """One partition's configuration image."""

    partition_index: int
    payload_bytes: int
    checksum: str

    @property
    def total_bytes(self) -> int:
        return HEADER_BYTES + self.payload_bytes


def generate_bitstreams(
    partitioning: TemporalPartitioning,
    characterization: HardwareCharacterization,
) -> list[ConfigurationBitstream]:
    """One deterministic pseudo-bitstream per temporal partition.

    The checksum digests the partition's node assignment so two partitions
    with identical contents produce identical streams (enabling
    configuration caching studies), while any change to the mapping changes
    the stream.
    """
    streams: list[ConfigurationBitstream] = []
    for partition in partitioning.partitions:
        payload = partition.area_used * BYTES_PER_AREA_UNIT
        digest_input = ",".join(
            f"{node_id}:{partitioning.dfg.node(node_id).opcode.mnemonic}"
            for node_id in sorted(partition.node_ids)
        )
        checksum = hashlib.sha256(digest_input.encode("ascii")).hexdigest()[:16]
        streams.append(
            ConfigurationBitstream(
                partition_index=partition.index,
                payload_bytes=payload,
                checksum=checksum,
            )
        )
    return streams


def total_configuration_bytes(streams: list[ConfigurationBitstream]) -> int:
    """Aggregate configuration storage the program memory must hold."""
    return sum(stream.total_bytes for stream in streams)


def unique_streams(streams: list[ConfigurationBitstream]) -> int:
    """Number of distinct configurations (cacheable reconfiguration)."""
    return len({stream.checksum for stream in streams})
