"""Deterministic fault injection and cooperative deadlines.

Chaos testing is only useful when a failing run can be replayed: this
module provides the seed-driven, picklable :class:`FaultPlan` that
:func:`repro.parallel.map_tasks`, the serving layer, the fault tests and
``benchmarks/bench_chaos.py`` all thread through.  A plan is a static
schedule — every fault is addressed by ``(task_index, attempt)`` — so a
chaos run is exactly as reproducible as a fault-free one and its
assertions never flake.

Five fault kinds cover the failure modes a process pool actually has:

``crash``
    The worker process dies mid-task (``os._exit``), breaking the pool.
    In a serial/in-process run (where there is no process to kill) the
    same schedule raises :class:`WorkerCrashError` instead, which the
    retry machinery treats exactly like a pool break, so results stay
    worker-count independent.
``error``
    The task raises :class:`InjectedFaultError` — an ordinary task
    exception, retried against the per-task attempt budget.
``slow``
    The task sleeps ``seconds`` before running; latency injection for
    deadline and p99 assertions.
``hang``
    The task sleeps ``seconds`` *instead of* finishing promptly; under a
    per-task deadline the parent kills the pool and retries, so a finite
    injected hang models an unbounded real one without wedging a test.
``poison``
    The task "succeeds" but returns a :class:`PoisonedResult` sentinel
    instead of its real result; the parent detects and fails it
    structurally instead of handing garbage downstream.

The module also owns the cooperative cancellation primitives the rest
of the robustness layer shares: :class:`Deadline` (a monotonic budget
token that survives pickling across process boundaries by re-anchoring
to the remaining seconds), :class:`RetryPolicy` (bounded attempts,
deterministic exponential backoff, pool-rebuild budget), and the
structured :class:`TaskFailure` record that replaces "the whole batch
died" as a failure report.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

__all__ = [
    "Deadline",
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "InjectedFaultError",
    "PoisonedResult",
    "RetryPolicy",
    "TaskFailure",
    "TaskFailureError",
    "WorkerCrashError",
]

#: The schedulable fault kinds.
FAULT_KINDS = ("crash", "error", "slow", "hang", "poison")

#: Exit status an injected crash kills the worker with (distinctive, so
#: a pool-break in a chaos run is attributable at a glance).
CRASH_EXIT_CODE = 23


class InjectedFaultError(RuntimeError):
    """The exception an ``error`` fault raises inside the task."""


class WorkerCrashError(RuntimeError):
    """A ``crash`` fault simulated in-process (serial runs have no
    worker process to kill); handled like a pool break, bounded by the
    :class:`RetryPolicy` rebuild budget rather than the attempt budget."""


@dataclass(frozen=True)
class PoisonedResult:
    """The sentinel a ``poison`` fault returns instead of a real result."""

    task_index: int
    attempt: int
    note: str = "poisoned result"


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: what happens when task ``task_index`` runs
    its ``attempt``-th execution (attempts count from 0)."""

    task_index: int
    attempt: int
    kind: str
    #: Sleep length for ``slow``/``hang`` faults (ignored otherwise).
    seconds: float = 0.0
    message: str = ""

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{FAULT_KINDS}"
            )
        if self.task_index < 0:
            raise ValueError("task_index must be >= 0")
        if self.attempt < 0:
            raise ValueError("attempt must be >= 0")
        if self.seconds < 0:
            raise ValueError("seconds must be >= 0")


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic, picklable schedule of injected faults.

    Address space: ``(task_index, attempt)`` within one
    :func:`repro.parallel.map_tasks` call — a worker consults the plan
    with its task's index and how many times that task has been
    submitted so far.  At most one fault fires per address (the first
    matching spec wins).  Plans are data, not behaviour: shipping one to
    a pool worker costs one small pickle and cannot drift between runs.
    """

    specs: tuple[FaultSpec, ...] = ()
    seed: int | None = None

    def lookup(self, task_index: int, attempt: int) -> FaultSpec | None:
        """The fault scheduled at this address, if any."""
        for spec in self.specs:
            if spec.task_index == task_index and spec.attempt == attempt:
                return spec
        return None

    def __bool__(self) -> bool:
        return bool(self.specs)

    @classmethod
    def of(cls, *specs: FaultSpec) -> "FaultPlan":
        """A plan from explicit fault specs (the assertable test form)."""
        return cls(specs=tuple(specs))

    @classmethod
    def crash_at(cls, *task_indices: int, attempt: int = 0) -> "FaultPlan":
        """Kill the worker running each listed task once (attempt 0 by
        default); the canonical "N workers die mid-run" chaos schedule."""
        return cls(
            specs=tuple(
                FaultSpec(task_index=index, attempt=attempt, kind="crash")
                for index in task_indices
            )
        )

    @classmethod
    def seeded(
        cls,
        seed: int,
        task_count: int,
        *,
        crash_rate: float = 0.0,
        error_rate: float = 0.0,
        slow_rate: float = 0.0,
        slow_seconds: float = 0.01,
        attempt: int = 0,
    ) -> "FaultPlan":
        """A reproducible random schedule: each first-attempt execution
        independently draws one fault (or none) from the given rates."""
        if crash_rate + error_rate + slow_rate > 1.0:
            raise ValueError("fault rates must sum to <= 1")
        rng = random.Random(seed)
        specs: list[FaultSpec] = []
        for index in range(task_count):
            draw = rng.random()
            if draw < crash_rate:
                specs.append(FaultSpec(index, attempt, "crash"))
            elif draw < crash_rate + error_rate:
                specs.append(
                    FaultSpec(
                        index, attempt, "error",
                        message=f"seeded fault (seed={seed})",
                    )
                )
            elif draw < crash_rate + error_rate + slow_rate:
                specs.append(
                    FaultSpec(index, attempt, "slow", seconds=slow_seconds)
                )
        return cls(specs=tuple(specs), seed=seed)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded, deterministic retry behaviour for one task batch.

    ``max_attempts`` bounds *counted* executions per task — a task
    exception, a poisoned result, or a per-task deadline expiry each
    consume one attempt.  Pool breaks do not: a crash's victims (the
    crashed task and any innocent in-flight neighbours) are re-run
    against the separate ``max_pool_rebuilds`` budget, so one flaky
    worker cannot eat the attempt budget of every task it took down.
    Backoff before retry ``k`` (counting from 1) is
    ``backoff_seconds * backoff_factor ** (k - 1)`` — deterministic, and
    slept inside the worker so the parent never stalls.
    """

    #: Counted executions allowed per task (1 = no retries).
    max_attempts: int = 1
    #: First-retry backoff; retries sleep before re-running.
    backoff_seconds: float = 0.05
    #: Exponential backoff multiplier per further retry.
    backoff_factor: float = 2.0
    #: Per-task deadline per attempt (seconds); expiry kills the pool,
    #: fails or retries the expired task, and re-runs the innocents.
    #: ``None`` disables the deadline.  Only enforceable where there is
    #: a process to kill — in-process (serial) runs cannot preempt.
    task_timeout_seconds: float | None = None
    #: Pool resurrections allowed after genuine worker crashes before
    #: the remaining tasks finish serially in-process.
    max_pool_rebuilds: int = 2

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_seconds < 0:
            raise ValueError("backoff_seconds must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if (
            self.task_timeout_seconds is not None
            and self.task_timeout_seconds <= 0
        ):
            raise ValueError("task_timeout_seconds must be positive")
        if self.max_pool_rebuilds < 0:
            raise ValueError("max_pool_rebuilds must be >= 0")

    def backoff_for(self, prior_failures: int) -> float:
        """Seconds to sleep before the next execution of a task that has
        failed ``prior_failures`` times already (0 = no sleep)."""
        if prior_failures <= 0 or self.backoff_seconds == 0:
            return 0.0
        return self.backoff_seconds * self.backoff_factor ** (
            prior_failures - 1
        )


@dataclass(frozen=True)
class TaskFailure:
    """The structured per-task report of an exhausted failure.

    ``kind`` is one of ``"exception"``, ``"poisoned"``, ``"timeout"``,
    ``"crashed"``.  In ``failure_mode="report"`` runs these occupy the
    failed task's result slot so one poisoned task no longer loses the
    whole batch; in ``failure_mode="raise"`` runs they surface as a
    :class:`TaskFailureError` (or the task's own exception).
    """

    index: int
    kind: str
    attempts: int
    message: str

    def describe(self) -> str:
        return (
            f"task {self.index} failed ({self.kind}) after "
            f"{self.attempts} attempt(s): {self.message}"
        )


class TaskFailureError(RuntimeError):
    """Raised in ``failure_mode="raise"`` for failures that have no
    original exception object (timeouts, crashes, poisoned results)."""

    def __init__(self, failure: TaskFailure) -> None:
        super().__init__(failure.describe())
        self.failure = failure


def _deadline_after(seconds: float) -> "Deadline":
    """Pickle reconstructor: re-anchor a deadline to the remaining
    budget in the receiving process (monotonic clocks do not travel)."""
    return Deadline.after(seconds)


@dataclass(frozen=True)
class Deadline:
    """A cooperative time budget, checked at batch boundaries.

    Long-running search loops poll :meth:`expired` every few thousand
    visits and stop with their best-so-far when the budget is gone —
    cancellation without threads, signals, or non-determinism in the
    work actually performed before the cut.  Pickling re-anchors to the
    remaining seconds, so a deadline handed to a pool worker keeps
    (approximately) the parent's budget rather than a meaningless
    foreign clock value.
    """

    expires_at: float = field(default=0.0)

    @classmethod
    def after(cls, seconds: float) -> "Deadline":
        """A deadline ``seconds`` from now (monotonic)."""
        if seconds < 0:
            seconds = 0.0
        return cls(expires_at=time.monotonic() + seconds)

    def remaining(self) -> float:
        """Seconds left (<= 0 once expired)."""
        return self.expires_at - time.monotonic()

    def expired(self) -> bool:
        return time.monotonic() >= self.expires_at

    def __reduce__(self):
        return (_deadline_after, (max(0.0, self.remaining()),))
