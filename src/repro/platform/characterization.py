"""Hardware characterization of the two reconfigurable fabrics.

The methodology "is parameterized with respect to the reconfigurable
hardware, i.e. the fine and the coarse-grain parts of the target
architecture.  It is assumed that both types of reconfigurable hardware are
characterized in terms of timing and area characteristics" (§1).  This
module is that characterization: per-operation area and delay on the
fine-grain (FPGA) fabric, executability on the coarse-grain CGC nodes, and
the clock relation between the fabrics (``T_FPGA = clock_ratio × T_CGC``,
default 3 as in §4).

Area is in the paper's abstract "units of area" (A_FPGA ∈ {1500, 5000} in
the experiments).  The defaults below assume a LUT-based fabric where a
word-level multiplier costs several times an adder, and data movement is
routing (zero units).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..ir.operations import OpClass, Opcode


@dataclass(frozen=True)
class OperationHardware:
    """Fabric-level cost of one operation class.

    ``fpga_area`` — area units one DFG node occupies in the fine-grain
    fabric (the ``size(ui)`` of the paper's Figure 3 algorithm).
    ``fpga_delay`` — FPGA clock cycles the node needs (same-level nodes run
    in parallel; a level costs the max delay of its nodes).
    ``cgc_executable`` — whether a CGC node (multiplier + ALU) can run it.
    """

    fpga_area: int
    fpga_delay: int
    cgc_executable: bool


#: Default per-class characterization.  MOVE ops are wires/register reads:
#: free area and folded into their consumer's cycle.  Area values are
#: calibrated against the paper's A_FPGA ∈ {1500, 5000} operating points: a
#: word-level adder occupies 60 units (so the small fabric holds ~25 ALU
#: ops), a word multiplier 3× that, and a memory interface port 24 units.
DEFAULT_CLASS_HARDWARE: dict[OpClass, OperationHardware] = {
    OpClass.ALU: OperationHardware(fpga_area=60, fpga_delay=1, cgc_executable=True),
    OpClass.MUL: OperationHardware(fpga_area=180, fpga_delay=2, cgc_executable=True),
    OpClass.DIV: OperationHardware(fpga_area=480, fpga_delay=4, cgc_executable=False),
    OpClass.MEM: OperationHardware(fpga_area=24, fpga_delay=1, cgc_executable=True),
    OpClass.MOVE: OperationHardware(fpga_area=0, fpga_delay=0, cgc_executable=True),
    OpClass.CALL: OperationHardware(fpga_area=0, fpga_delay=1, cgc_executable=False),
    OpClass.CONTROL: OperationHardware(fpga_area=0, fpga_delay=0, cgc_executable=False),
}


@dataclass
class HardwareCharacterization:
    """Joint characterization of the fine- and coarse-grain fabrics.

    ``clock_ratio`` is T_FPGA / T_CGC (integer; the paper uses 3).
    ``reconfig_cycles`` is the full-reconfiguration penalty of the
    fine-grain device expressed in FPGA cycles; "the reconfiguration time
    has the same value for each partition and it is added to the execution
    time of each temporal partition" (§3.2).
    """

    class_hardware: dict[OpClass, OperationHardware] = field(
        default_factory=lambda: dict(DEFAULT_CLASS_HARDWARE)
    )
    opcode_overrides: dict[Opcode, OperationHardware] = field(default_factory=dict)
    clock_ratio: int = 3
    reconfig_cycles: int = 20

    def __post_init__(self) -> None:
        if self.clock_ratio < 1:
            raise ValueError("clock_ratio must be >= 1")
        if self.reconfig_cycles < 0:
            raise ValueError("reconfig_cycles cannot be negative")
        missing = [c for c in OpClass if c not in self.class_hardware]
        if missing:
            raise ValueError(f"characterization missing op classes: {missing}")

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def for_opcode(self, opcode: Opcode) -> OperationHardware:
        override = self.opcode_overrides.get(opcode)
        if override is not None:
            return override
        return self.class_hardware[opcode.op_class]

    def fpga_area(self, opcode: Opcode) -> int:
        return self.for_opcode(opcode).fpga_area

    def fpga_delay(self, opcode: Opcode) -> int:
        return self.for_opcode(opcode).fpga_delay

    def cgc_executable(self, opcode: Opcode) -> bool:
        return self.for_opcode(opcode).cgc_executable

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    def fpga_cycles_to_cgc_ticks(self, fpga_cycles: int) -> int:
        """Convert FPGA cycles to the internal CGC-tick timebase."""
        return fpga_cycles * self.clock_ratio

    def cgc_ticks_to_fpga_cycles(self, ticks: int) -> float:
        """Convert CGC ticks back to (possibly fractional) FPGA cycles."""
        return ticks / self.clock_ratio

    def with_overrides(self, **kwargs) -> "HardwareCharacterization":
        """A copy with selected top-level fields replaced."""
        return replace(self, **kwargs)


def default_characterization(**kwargs) -> HardwareCharacterization:
    """The characterization used throughout the paper reproduction."""
    return HardwareCharacterization(**kwargs)
