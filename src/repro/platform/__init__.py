"""Generic hybrid platform model (paper Figure 1) and fabric characterization."""

from .characterization import (
    DEFAULT_CLASS_HARDWARE,
    HardwareCharacterization,
    OperationHardware,
    default_characterization,
)
from .interconnect import Interconnect
from .memory import SharedMemory
from .soc import HybridPlatform, paper_platform

__all__ = [
    "DEFAULT_CLASS_HARDWARE",
    "HardwareCharacterization",
    "HybridPlatform",
    "Interconnect",
    "OperationHardware",
    "SharedMemory",
    "default_characterization",
    "paper_platform",
]
