"""Reconfigurable interconnection network model (paper Figure 1).

The generic platform routes data between the microprocessor, the two
reconfigurable fabrics and the shared memory over a reconfigurable
interconnect.  For the execution-time model only its per-transfer overhead
matters; we expose it as a fixed setup cost plus per-word cost so ablation
benchmarks can study sensitivity to interconnect quality.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class Interconnect:
    """Timing model of the reconfigurable interconnection network.

    ``setup_cycles`` — cycles to configure a route before a burst.
    ``cycles_per_word`` — additional cycles each transferred word spends
    on the network (on top of memory port latency).
    """

    setup_cycles: int = 2
    cycles_per_word: int = 0

    def __post_init__(self) -> None:
        if self.setup_cycles < 0 or self.cycles_per_word < 0:
            raise ValueError("interconnect costs cannot be negative")

    def transfer_overhead(self, words: int) -> int:
        """Network cycles added to a burst of ``words`` words."""
        if words <= 0:
            return 0
        return self.setup_cycles + words * self.cycles_per_word
