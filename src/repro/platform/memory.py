"""Shared data memory model (the "Shared data memory" of paper Figure 1).

Both fabrics exchange data exclusively through this memory: temporal
partitions of the fine-grain mapping store their boundary values here
(§3.2), and kernels moved to the coarse-grain data-path receive/return
their live values through it (t_comm of Eq. 2).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class SharedMemory:
    """Timing model of the platform's shared data memory.

    ``read_latency`` / ``write_latency`` are FPGA cycles per word,
    ``ports`` is the number of words transferable concurrently.  A transfer
    of N words therefore takes ``ceil(N / ports) × latency`` cycles.
    """

    read_latency: int = 1
    write_latency: int = 1
    ports: int = 2
    size_words: int = 1 << 20

    def __post_init__(self) -> None:
        if self.ports < 1:
            raise ValueError("memory needs at least one port")
        if self.read_latency < 0 or self.write_latency < 0:
            raise ValueError("latencies cannot be negative")
        if self.size_words <= 0:
            raise ValueError("memory size must be positive")

    def read_cycles(self, words: int) -> int:
        """FPGA cycles to read ``words`` words."""
        if words <= 0:
            return 0
        bursts = -(-words // self.ports)  # ceil division
        return bursts * self.read_latency

    def write_cycles(self, words: int) -> int:
        """FPGA cycles to write ``words`` words."""
        if words <= 0:
            return 0
        bursts = -(-words // self.ports)
        return bursts * self.write_latency

    def transfer_cycles(self, words_in: int, words_out: int) -> int:
        """Round-trip cost of staging inputs and retrieving outputs."""
        return self.read_cycles(words_in) + self.write_cycles(words_out)
