"""The generic hybrid reconfigurable platform (paper Figure 1).

Aggregates everything the partitioning engine needs to price an execution:
the fine-grain FPGA device, the coarse-grain CGC data-path, the shared data
memory, the interconnect, and the fabric characterization.  "This generic
architecture can model a variety of existing hybrid reconfigurable
architectures, like Pleiades, SPS and Chameleon" (§1/§2) — instantiate it
with different parameters to model each.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..coarsegrain.datapath import CGCDatapath, standard_datapath
from ..finegrain.device import FPGADevice
from .characterization import HardwareCharacterization, default_characterization
from .interconnect import Interconnect
from .memory import SharedMemory


@dataclass
class HybridPlatform:
    """One configured instance of the Figure 1 architecture."""

    fpga: FPGADevice
    datapath: CGCDatapath
    memory: SharedMemory = field(default_factory=SharedMemory)
    interconnect: Interconnect = field(default_factory=Interconnect)
    characterization: HardwareCharacterization = field(
        default_factory=default_characterization
    )
    name: str = "generic-hybrid-platform"

    def __post_init__(self) -> None:
        # Keep the two sources of the reconfiguration penalty coherent:
        # the device is authoritative, the characterization mirrors it.
        if self.characterization.reconfig_cycles != self.fpga.reconfig_cycles:
            self.characterization = self.characterization.with_overrides(
                reconfig_cycles=self.fpga.reconfig_cycles
            )

    @property
    def area_budget(self) -> int:
        """The A_FPGA the temporal partitioner can fill."""
        return self.fpga.usable_area

    @property
    def clock_ratio(self) -> int:
        return self.characterization.clock_ratio

    def describe(self) -> str:
        return (
            f"{self.name}: A_FPGA={self.area_budget}, "
            f"CGCs={self.datapath.describe()}, "
            f"T_FPGA={self.clock_ratio}·T_CGC, "
            f"reconfig={self.fpga.reconfig_cycles}cyc"
        )


def paper_platform(
    afpga: int,
    cgc_count: int,
    *,
    reconfig_cycles: int = 20,
    clock_ratio: int = 3,
    rows: int = 2,
    cols: int = 2,
    memory: SharedMemory | None = None,
    characterization: HardwareCharacterization | None = None,
    memory_ports: int | None = None,
) -> HybridPlatform:
    """One of the paper's four experimental configurations.

    §4 evaluates A_FPGA ∈ {1500, 5000} area units crossed with {two, three}
    2×2 CGCs, at T_FPGA = 3·T_CGC.  Each CGC brings its own load/store path
    to the shared data memory, so the data-path's memory ports default to
    the CGC count; the interconnect between the fabrics and the shared
    memory is assumed pre-routed for kernel transfers (no per-burst setup).
    """
    fpga = FPGADevice.from_usable_area(
        afpga, reconfig_cycles=reconfig_cycles
    )
    char = characterization or default_characterization(
        clock_ratio=clock_ratio, reconfig_cycles=reconfig_cycles
    )
    ports = memory_ports if memory_ports is not None else cgc_count
    return HybridPlatform(
        fpga=fpga,
        datapath=standard_datapath(cgc_count, rows, cols, memory_ports=ports),
        memory=memory or SharedMemory(),
        interconnect=Interconnect(setup_cycles=0),
        characterization=char,
        name=f"amdrel-A{afpga}-{cgc_count}x({rows}x{cols})",
    )
