"""Shared process fan-out with supervision, retries, and a serial fallback.

The explore grids, the scenario suite, the sharded exhaustive walk and
the batch server all fan tasks out the same way: a
``ProcessPoolExecutor`` warmed by a probe submission (worker processes
spawn lazily, so an unusable pool — no fork, no sem_open — may only
surface then), degrading to a serial in-process run when the pool
cannot be built, and re-raising genuine task errors as themselves.
Results always come back in task order, so a caller's merge is
deterministic regardless of worker scheduling.

On top of that baseline, :func:`map_tasks` supervises the pool:

* **Pool resurrection with salvage.**  A worker dying mid-run
  (``BrokenProcessPool``) no longer re-runs the whole batch serially:
  results already completed are salvaged, the pool is rebuilt (bounded
  by :class:`~repro.faults.RetryPolicy.max_pool_rebuilds`), and only the
  lost tasks run again — the merged output stays bit-identical to a
  fault-free serial run in task order.  When the rebuild budget is
  exhausted the remaining tasks finish serially in-process.
* **Bounded per-task retry with deterministic backoff.**  A task
  exception, a poisoned result, or a per-task deadline expiry consumes
  one attempt; tasks with attempts left are resubmitted after a
  deterministic exponential backoff (slept inside the worker, so the
  parent never stalls).
* **Per-task deadlines.**  ``RetryPolicy.task_timeout_seconds`` bounds
  each attempt; an expired task gets the pool's processes killed (the
  only way to preempt a hung worker), is failed or retried, and the
  innocent in-flight neighbours are re-run on the next pool.
* **Structured failure reports.**  ``failure_mode="report"`` replaces
  "one poisoned task loses the batch" with a
  :class:`~repro.faults.TaskFailure` in the failed task's result slot;
  ``failure_mode="raise"`` (the default) keeps the historical contract
  of raising the task's own exception.
* **Deterministic fault injection.**  A
  :class:`~repro.faults.FaultPlan` threads through to the workers, so
  chaos runs (crash / error / slow / hang / poison schedules) are
  reproducible and assertable.

When telemetry is enabled (:mod:`repro.telemetry`), each pooled worker
runs its task under a fresh, isolated trace and ships that subtrace
back alongside the result; the parent absorbs the final successful
attempt's subtrace per task, in task order, so the merged trace is
deterministic and matches what a serial run records in place.
Supervision events surface as counters (``task_retries``,
``pool_rebuilds``, ``task_timeouts``, ``tasks_failed``,
``tasks_recovered``) both in telemetry and in an optional ``counters``
sink dict for callers that keep their own books.

This module sits below every repro subsystem except the (equally leaf)
telemetry and faults layers, so the search layer can use it without
creating an import cycle with :mod:`repro.explore`.
"""

from __future__ import annotations

import os
import time
import warnings
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
)
from concurrent.futures import wait as futures_wait
from typing import Callable, Iterable, MutableMapping, Sequence, TypeVar

from repro import telemetry
from repro.faults import (
    CRASH_EXIT_CODE,
    FaultPlan,
    FaultSpec,
    InjectedFaultError,
    PoisonedResult,
    RetryPolicy,
    TaskFailure,
    TaskFailureError,
    WorkerCrashError,
)

_Task = TypeVar("_Task")
_Result = TypeVar("_Result")

#: Errors meaning "the pool itself is unusable" when raised at build /
#: probe time (as opposed to errors a task raised while running).
_POOL_BUILD_ERRORS = (OSError, ImportError, NotImplementedError, BrokenExecutor)


class _TracedCall:
    """Picklable wrapper running ``fn`` under a per-task subtrace.

    Pool workers are long-lived, so recording into the worker's ambient
    trace would accumulate across tasks and double-count once merged;
    a fresh :class:`~repro.telemetry.Trace` per call keeps each task's
    spans isolated.  Returns ``(result, subtrace)``; the subtrace is
    ``None`` when telemetry is disabled in the worker (e.g. the parent
    enabled it programmatically but the env var switches it off in
    spawned children).
    """

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[[_Task], _Result]) -> None:
        self.fn = fn

    def __call__(self, task: _Task) -> tuple[_Result, telemetry.Trace | None]:
        if not telemetry.enabled():
            return self.fn(task), None
        with telemetry.use_trace(telemetry.Trace()) as trace:
            result = self.fn(task)
        return result, trace


class _GuardedCall:
    """The pooled per-attempt wrapper: backoff sleep, fault injection,
    per-task subtrace.  Receives ``(index, attempt, delay, task)`` so
    the fault plan can be consulted *inside* the worker — a ``crash``
    fault genuinely kills the worker process, not a simulation."""

    __slots__ = ("fn", "plan")

    def __init__(
        self, fn: Callable[[_Task], _Result], plan: FaultPlan | None
    ) -> None:
        self.fn = fn
        self.plan = plan

    def __call__(
        self, unit: tuple[int, int, float, _Task]
    ) -> tuple[object, telemetry.Trace | None]:
        index, attempt, delay, task = unit
        if delay > 0:
            time.sleep(delay)
        spec = (
            self.plan.lookup(index, attempt)
            if self.plan is not None
            else None
        )
        if spec is not None:
            if spec.kind == "crash":
                os._exit(CRASH_EXIT_CODE)
            if spec.kind == "error":
                raise InjectedFaultError(
                    spec.message
                    or f"injected fault at task {index} attempt {attempt}"
                )
            if spec.kind == "poison":
                return PoisonedResult(index, attempt), None
            if spec.kind in ("slow", "hang"):
                time.sleep(spec.seconds)
        return _TracedCall(self.fn)(task)


class _PoolUnavailable(Exception):
    """Internal: the first pool build / probe failed (full serial
    fallback, exactly the historical behaviour)."""

    def __init__(self, error: BaseException) -> None:
        super().__init__(str(error))
        self.error = error


_MISSING = object()


class _MapRun:
    """One :func:`map_tasks` invocation's supervision state."""

    def __init__(
        self,
        fn: Callable[[_Task], _Result],
        tasks: list[_Task],
        workers: int,
        what: str,
        policy: RetryPolicy,
        plan: FaultPlan | None,
        failure_mode: str,
        counters: MutableMapping[str, int] | None,
        serial_runner: Callable[[Sequence[_Task]], list[_Result]] | None,
    ) -> None:
        self.fn = fn
        self.tasks = tasks
        self.workers = workers
        self.what = what
        self.policy = policy
        self.plan = plan
        self.failure_mode = failure_mode
        self.counters = counters
        self.serial_runner = serial_runner
        n = len(tasks)
        self.results: list[object] = [_MISSING] * n
        self.traces: list[telemetry.Trace | None] = [None] * n
        #: Submissions so far per task — the fault plan's attempt axis.
        self.attempts = [0] * n
        #: Counted failures per task (exception/poison/timeout), judged
        #: against ``policy.max_attempts``.
        self.failures = [0] * n
        #: Tasks that hit any fault/crash/timeout on the way (feeds the
        #: ``tasks_recovered`` counter when they still succeed).
        self.disturbed = [False] * n
        self.rebuild_budget = policy.max_pool_rebuilds
        self.wrapper = _GuardedCall(fn, plan)

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    def count(self, name: str, amount: int = 1) -> None:
        telemetry.count(name, amount)
        if self.counters is not None:
            self.counters[name] = self.counters.get(name, 0) + amount

    def succeed(
        self, index: int, value: object, trace: telemetry.Trace | None
    ) -> None:
        self.results[index] = value
        self.traces[index] = trace
        if self.disturbed[index]:
            self.count("tasks_recovered")

    def record_failure(
        self,
        index: int,
        kind: str,
        message: str,
        error: BaseException | None = None,
    ) -> bool:
        """Count one failed attempt; True when the task may retry."""
        self.failures[index] += 1
        self.disturbed[index] = True
        if self.failures[index] < self.policy.max_attempts:
            self.count("task_retries")
            return True
        failure = TaskFailure(
            index=index,
            kind=kind,
            attempts=self.attempts[index],
            message=message,
        )
        self.count("tasks_failed")
        if self.failure_mode == "raise":
            if error is not None:
                raise error
            raise TaskFailureError(failure)
        self.results[index] = failure
        return False

    def consume_value(
        self, index: int, value: object, trace: telemetry.Trace | None
    ) -> bool:
        """Handle one completed attempt's value; True when the task is
        settled (success or final failure), False when it must retry."""
        if isinstance(value, PoisonedResult):
            return not self.record_failure(index, "poisoned", value.note)
        self.succeed(index, value, trace)
        return True

    # ------------------------------------------------------------------
    # Serial execution (workers == 1, pool fallback, crash exhaustion)
    # ------------------------------------------------------------------
    def call_serially(self, index: int) -> object:
        if self.serial_runner is not None:
            return self.serial_runner([self.tasks[index]])[0]
        return self.fn(self.tasks[index])

    def run_one_serial(self, index: int) -> None:
        while True:
            delay = self.policy.backoff_for(self.failures[index])
            if delay > 0:
                time.sleep(delay)
            attempt = self.attempts[index]
            self.attempts[index] += 1
            spec: FaultSpec | None = (
                self.plan.lookup(index, attempt)
                if self.plan is not None
                else None
            )
            try:
                if spec is not None and spec.kind == "crash":
                    # No worker process to kill in-process: simulate the
                    # crash and recover through the same rebuild budget.
                    raise WorkerCrashError(
                        f"injected crash at task {index} attempt {attempt}"
                    )
                if spec is not None and spec.kind == "error":
                    raise InjectedFaultError(
                        spec.message
                        or f"injected fault at task {index} attempt {attempt}"
                    )
                if spec is not None and spec.kind == "poison":
                    value: object = PoisonedResult(index, attempt)
                else:
                    if spec is not None and spec.kind in ("slow", "hang"):
                        time.sleep(spec.seconds)
                    value = self.call_serially(index)
            except WorkerCrashError as error:
                self.disturbed[index] = True
                if self.rebuild_budget > 0:
                    # Parity with the pooled path: a crash consumes the
                    # rebuild budget, not the task's attempt budget.
                    self.rebuild_budget -= 1
                    self.count("pool_rebuilds")
                    continue
                if self.record_failure(index, "crashed", str(error)):
                    continue
                return
            except Exception as error:  # noqa: BLE001 - classified below
                if self.record_failure(
                    index,
                    "exception",
                    f"{type(error).__name__}: {error}",
                    error=error,
                ):
                    continue
                return
            if self.consume_value(index, value, None):
                return

    def run_serial(self, indices: Iterable[int]) -> None:
        for index in indices:
            self.run_one_serial(index)

    # ------------------------------------------------------------------
    # Pooled execution
    # ------------------------------------------------------------------
    def run_pooled(self) -> None:
        pending = list(range(len(self.tasks)))
        first = True
        while pending:
            try:
                pool = ProcessPoolExecutor(
                    max_workers=min(self.workers, len(pending))
                )
                pool.submit(os.getpid).result()  # force a worker to spawn
            except _POOL_BUILD_ERRORS as error:
                if first:
                    raise _PoolUnavailable(error) from error
                warnings.warn(
                    f"cannot rebuild worker pool ({error}); finishing "
                    f"{len(pending)} {self.what} serially",
                    RuntimeWarning,
                    stacklevel=4,
                )
                self.run_serial(pending)
                return
            first = False
            pending, reason = self.drive_pool(pool, pending)
            if not pending:
                return
            if reason == "crash":
                if self.rebuild_budget <= 0:
                    warnings.warn(
                        f"worker pool crash budget exhausted; finishing "
                        f"{len(pending)} {self.what} serially",
                        RuntimeWarning,
                        stacklevel=4,
                    )
                    self.run_serial(pending)
                    return
                self.rebuild_budget -= 1
                warnings.warn(
                    f"worker pool broke mid-run; salvaged completed "
                    f"{self.what}, re-running {len(pending)} lost task(s) "
                    "on a fresh pool",
                    RuntimeWarning,
                    stacklevel=4,
                )
            # A deadline kill always rebuilds (the per-task attempt
            # budget bounds it); a crash consumed the budget above.
            self.count("pool_rebuilds")

    def drive_pool(
        self, pool: ProcessPoolExecutor, indices: list[int]
    ) -> tuple[list[int], str]:
        """Run ``indices`` on one pool until it empties or breaks.

        Returns ``(lost_indices, reason)`` — the tasks that must re-run
        on a fresh pool (or serially) and why (``"crash"`` for a broken
        pool, ``"kill"`` for a deadline kill, ``""`` when done).
        """
        inflight: dict[Future, tuple[int, float | None]] = {}
        timeout_s = self.policy.task_timeout_seconds
        lost: list[int] = []
        broke = False

        def submit(index: int) -> None:
            nonlocal broke
            delay = self.policy.backoff_for(self.failures[index])
            unit = (index, self.attempts[index], delay, self.tasks[index])
            self.attempts[index] += 1
            try:
                future = pool.submit(self.wrapper, unit)
            except BrokenExecutor:
                broke = True
                self.disturbed[index] = True
                lost.append(index)
                return
            deadline = (
                None
                if timeout_s is None
                else time.monotonic() + delay + timeout_s
            )
            inflight[future] = (index, deadline)

        def sweep(reason: str) -> tuple[list[int], str]:
            """Salvage completed-but-unharvested results; everything
            else re-runs (the bit-identity of salvaged output is free:
            a task's value never depends on which pool ran it)."""
            for future, (index, _) in list(inflight.items()):
                if future.done() and future.exception() is None:
                    value, subtrace = future.result()
                    if not self.consume_value(index, value, subtrace):
                        lost.append(index)
                else:
                    self.disturbed[index] = True
                    lost.append(index)
            inflight.clear()
            return sorted(set(lost)), reason

        try:
            for index in indices:
                submit(index)
            if broke:
                return sweep("crash")
            while inflight:
                wait_for = None
                if timeout_s is not None:
                    deadlines = [
                        deadline
                        for _, deadline in inflight.values()
                        if deadline is not None
                    ]
                    if deadlines:
                        wait_for = (
                            max(0.0, min(deadlines) - time.monotonic())
                            + 0.002
                        )
                done, _ = futures_wait(
                    set(inflight),
                    timeout=wait_for,
                    return_when=FIRST_COMPLETED,
                )
                for future in done:
                    index, _ = inflight.pop(future)
                    error = future.exception()
                    if error is None:
                        value, subtrace = future.result()
                        if not self.consume_value(index, value, subtrace):
                            if broke:
                                lost.append(index)
                            else:
                                submit(index)
                    elif isinstance(error, BrokenExecutor):
                        broke = True
                        self.disturbed[index] = True
                        lost.append(index)
                    else:
                        if self.record_failure(
                            index,
                            "exception",
                            f"{type(error).__name__}: {error}",
                            error=error,
                        ):
                            if broke:
                                lost.append(index)
                            else:
                                submit(index)
                if broke:
                    return sweep("crash")
                if not done and inflight:
                    now = time.monotonic()
                    expired = {
                        future: index
                        for future, (index, deadline) in inflight.items()
                        if deadline is not None and deadline <= now
                    }
                    if not expired:
                        continue
                    self.count("task_timeouts", len(expired))
                    # Killing the processes is the only way to preempt a
                    # hung worker; innocents re-run on the next pool.
                    for process in list(
                        getattr(pool, "_processes", {}).values()
                    ):
                        process.kill()
                    assert timeout_s is not None
                    for future, index in expired.items():
                        inflight.pop(future)
                        if self.record_failure(
                            index,
                            "timeout",
                            f"task exceeded its {timeout_s:g}s deadline",
                        ):
                            lost.append(index)
                    return sweep("kill")
            return sorted(set(lost)), ""
        finally:
            pool.shutdown(wait=False, cancel_futures=True)


def map_tasks(
    fn: Callable[[_Task], _Result],
    tasks: Iterable[_Task],
    max_workers: int,
    *,
    what: str = "tasks",
    serial_runner: Callable[[Sequence[_Task]], list[_Result]] | None = None,
    policy: RetryPolicy | None = None,
    fault_plan: FaultPlan | None = None,
    failure_mode: str = "raise",
    counters: MutableMapping[str, int] | None = None,
) -> tuple[list[_Result], int]:
    """``[fn(t) for t in tasks]`` across worker processes, in task order.

    Returns ``(results, workers_used)``.  ``max_workers <= 1`` or a
    single task runs serially in-process; ``serial_runner`` overrides
    the serial path (callers use it to thread per-call caches through
    instead of repickling state per task).  An unusable pool (surfaced
    at construction or by the warm-up probe) falls back to a serial run
    with a warning.

    ``policy`` bounds per-task retries, backoff, per-attempt deadlines
    and the pool-rebuild budget (see :class:`~repro.faults.RetryPolicy`;
    the default allows no retries, matching the historical contract: a
    task's own exception propagates, so the fallback never re-runs work
    that would fail anyway).  A worker dying mid-run salvages completed
    results, rebuilds the pool, and re-runs only the lost tasks — the
    merged output is bit-identical to a fault-free serial run.
    ``failure_mode="report"`` returns a
    :class:`~repro.faults.TaskFailure` in a failed task's slot instead
    of raising.  ``fault_plan`` injects a deterministic
    :class:`~repro.faults.FaultPlan` (tests / chaos benchmarks).
    ``counters`` receives the supervision counters (``task_retries``,
    ``pool_rebuilds``, ``task_timeouts``, ``tasks_failed``,
    ``tasks_recovered``) in addition to telemetry.
    """
    tasks = list(tasks)
    if failure_mode not in ("raise", "report"):
        raise ValueError(
            f"failure_mode must be 'raise' or 'report', got {failure_mode!r}"
        )
    active = policy or RetryPolicy()
    plain = (
        policy is None
        and fault_plan is None
        and failure_mode == "raise"
        and counters is None
    )

    def run_serially_legacy() -> list[_Result]:
        if serial_runner is not None:
            return serial_runner(tasks)
        return [fn(task) for task in tasks]

    run = _MapRun(
        fn,
        tasks,
        max(1, max_workers),
        what,
        active,
        fault_plan,
        failure_mode,
        counters,
        serial_runner,
    )
    workers = run.workers
    if workers == 1 or len(tasks) <= 1:
        if plain:
            return run_serially_legacy(), 1
        run.run_serial(range(len(tasks)))
        return run.results, 1  # type: ignore[return-value]
    try:
        run.run_pooled()
    except _PoolUnavailable as unavailable:
        warnings.warn(
            f"process pool unavailable ({unavailable.error}); running "
            f"{what} serially",
            RuntimeWarning,
            stacklevel=2,
        )
        if plain:
            return run_serially_legacy(), 1
        run.run_serial(range(len(tasks)))
        return run.results, 1  # type: ignore[return-value]
    # Absorb the final successful attempt's subtrace per task, in task
    # order: deterministic merge no matter how the pool scheduled the
    # work or how many retries it took.
    for trace in run.traces:
        if trace is not None:
            telemetry.absorb(trace)
    return run.results, workers  # type: ignore[return-value]
