"""Shared process fan-out with a serial fallback.

The explore grids, the scenario suite, and the sharded exhaustive walk
all fan tasks out the same way: a ``ProcessPoolExecutor`` warmed by a
probe submission (worker processes spawn lazily, so an unusable pool —
no fork, no sem_open — may only surface then), degrading to a serial
in-process run when the pool cannot be built, and re-raising genuine
task errors as themselves.  Results always come back in task order, so
a caller's merge is deterministic regardless of worker scheduling.

When telemetry is enabled (:mod:`repro.telemetry`), each pooled worker
runs its task under a fresh, isolated trace and ships that subtrace
back alongside the result; the parent absorbs the subtraces in task
order, so the merged trace is deterministic and matches what a serial
run records in place.

This module sits below every repro subsystem except the (equally leaf)
telemetry layer, so the search layer can use it without creating an
import cycle with :mod:`repro.explore`.
"""

from __future__ import annotations

import os
import warnings
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

from repro import telemetry

_Task = TypeVar("_Task")
_Result = TypeVar("_Result")


class _TracedCall:
    """Picklable wrapper running ``fn`` under a per-task subtrace.

    Pool workers are long-lived, so recording into the worker's ambient
    trace would accumulate across tasks and double-count once merged;
    a fresh :class:`~repro.telemetry.Trace` per call keeps each task's
    spans isolated.  Returns ``(result, subtrace)``; the subtrace is
    ``None`` when telemetry is disabled in the worker (e.g. the parent
    enabled it programmatically but the env var switches it off in
    spawned children).
    """

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[[_Task], _Result]) -> None:
        self.fn = fn

    def __call__(self, task: _Task) -> tuple[_Result, telemetry.Trace | None]:
        if not telemetry.enabled():
            return self.fn(task), None
        with telemetry.use_trace(telemetry.Trace()) as trace:
            result = self.fn(task)
        return result, trace


def map_tasks(
    fn: Callable[[_Task], _Result],
    tasks: Iterable[_Task],
    max_workers: int,
    *,
    what: str = "tasks",
    serial_runner: Callable[[Sequence[_Task]], list[_Result]] | None = None,
) -> tuple[list[_Result], int]:
    """``[fn(t) for t in tasks]`` across worker processes, in task order.

    Returns ``(results, workers_used)``.  ``max_workers <= 1`` or a
    single task runs serially in-process; ``serial_runner`` overrides
    the serial path (callers use it to thread per-call caches through
    instead of repickling state per task).  An unusable pool (surfaced
    at construction or by the warm-up probe) and a worker dying mid-run
    (``BrokenExecutor``) fall back to a serial run with a warning;
    errors raised after the probe succeeded are the tasks' own and
    propagate, so the fallback never re-runs work that would fail
    anyway.
    """
    tasks = list(tasks)

    def run_serially() -> list[_Result]:
        if serial_runner is not None:
            return serial_runner(tasks)
        return [fn(task) for task in tasks]

    workers = max(1, max_workers)
    if workers == 1 or len(tasks) <= 1:
        return run_serially(), 1
    pool_ready = False
    try:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            pool.submit(os.getpid).result()  # force a worker to spawn
            pool_ready = True
            if not telemetry.enabled():
                return list(pool.map(fn, tasks)), workers
            shipped = list(pool.map(_TracedCall(fn), tasks))
            # Absorb subtraces in task order: deterministic merge no
            # matter how the pool scheduled the work.
            for _, subtrace in shipped:
                telemetry.absorb(subtrace)
            return [result for result, _ in shipped], workers
    except (OSError, ImportError, NotImplementedError) as error:
        if pool_ready:  # the error is the tasks' own: surface it
            raise
        warnings.warn(
            f"process pool unavailable ({error}); running {what} serially",
            RuntimeWarning,
            stacklevel=2,
        )
        return run_serially(), 1
    except BrokenExecutor as error:
        warnings.warn(
            f"worker pool broke mid-run ({error}); running {what} serially",
            RuntimeWarning,
            stacklevel=2,
        )
        return run_serially(), 1
