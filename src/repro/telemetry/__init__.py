"""Lightweight, stdlib-only tracing and metrics for the whole pipeline.

Every layer of the partitioning pipeline — profiling, pricing, search,
exploration, the scenario suite — wraps its phase boundaries in
:func:`span` context managers and bumps :func:`count` counters at coarse
checkpoints.  The result is a per-run :class:`Trace` tree of
:class:`Span` nodes (wall seconds + call counts + monotonic counters,
nested by dynamic scope) that answers "where did the time go?" without
any external dependency and without touching the per-configuration hot
loops (spans sit at phase boundaries — a search records *one* span, not
one per visited configuration — which is what keeps the overhead inside
the ≤2% budget ``bench_suite.py`` asserts).

Design constraints, in order:

* **Zero-cost when off.**  The global switch (:func:`set_enabled`, env
  ``REPRO_TELEMETRY``, default on) reduces :func:`span` to returning a
  shared no-op context manager and :func:`count` to one boolean test —
  no allocation, no dict traffic.  Search results and suite cycles are
  bit-identical either way; telemetry only *observes*.
* **Picklable.**  A :class:`Trace` (and every :class:`Span` under it)
  holds nothing but strings, numbers, dicts and lists, so
  :func:`repro.parallel.map_tasks` workers capture their own subtrace
  per task and ship it back with the task result; the parent merges the
  subtraces **in task order**, making the merged tree deterministic
  regardless of worker scheduling (and identical in shape to a serial
  run, where the same spans record directly into the ambient trace).
* **Merge by name.**  Two spans with the same name under the same parent
  are one logical phase: merging sums their seconds, call counts and
  counters and recurses into children, preserving first-seen order.

Typical use::

    from repro import telemetry

    with telemetry.span("price_table"):
        table = PackedCostTable.from_model(model)
    telemetry.count("cost_table_builds")

    print(telemetry.get_trace().render())
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import Iterator

__all__ = [
    "Span",
    "Trace",
    "absorb",
    "count",
    "current_span",
    "enabled",
    "get_trace",
    "reset_trace",
    "set_enabled",
    "span",
    "use_trace",
]

#: Environment switch: anything but these (case-insensitive) enables.
_ENV_VAR = "REPRO_TELEMETRY"
_OFF_VALUES = ("0", "false", "off", "no", "")


def _env_enabled() -> bool:
    return os.environ.get(_ENV_VAR, "1").strip().lower() not in _OFF_VALUES


class Span:
    """One named phase: wall seconds, entry count, counters, children.

    Spans form a tree by dynamic scope; re-entering a name under the
    same parent accumulates into the same node (``calls`` counts the
    entries).  Plain-data only, so the tree pickles and JSON-serializes
    trivially.
    """

    __slots__ = ("name", "seconds", "calls", "counters", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.seconds = 0.0
        self.calls = 0
        self.counters: dict[str, int] = {}
        self.children: dict[str, "Span"] = {}

    # Default __slots__ pickling (protocol 2's ``(None, slots)`` state)
    # works, but an explicit dict state keeps the format obvious and
    # stable for the store/JSON layers built on top.
    def __getstate__(self) -> dict[str, object]:
        return self.to_dict()

    def __setstate__(self, state: dict[str, object]) -> None:
        other = Span.from_dict(state)
        self.name = other.name
        self.seconds = other.seconds
        self.calls = other.calls
        self.counters = other.counters
        self.children = other.children

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, {self.seconds:.6f}s, calls={self.calls}, "
            f"counters={self.counters}, children={list(self.children)})"
        )

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def child(self, name: str) -> "Span":
        """The named child, created on first use (insertion-ordered)."""
        node = self.children.get(name)
        if node is None:
            node = self.children[name] = Span(name)
        return node

    def find(self, *path: str) -> "Span | None":
        """Descendant lookup by name path; None when any hop is absent."""
        node: Span | None = self
        for name in path:
            if node is None:
                return None
            node = node.children.get(name)
        return node

    def walk(self, depth: int = 0) -> Iterator[tuple[int, "Span"]]:
        """Depth-first (self included), children in first-seen order."""
        yield depth, self
        for node in self.children.values():
            yield from node.walk(depth + 1)

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def merge(self, other: "Span") -> None:
        """Accumulate ``other`` into this span (recursively, by name).

        Seconds, calls and counters sum; children merge by name with
        first-seen order preserved (self's order first, then any new
        names in ``other``'s order) — so merging a list of subtraces in
        a fixed order yields one deterministic tree.
        """
        self.seconds += other.seconds
        self.calls += other.calls
        for key, value in other.counters.items():
            self.counters[key] = self.counters.get(key, 0) + value
        for name, node in other.children.items():
            self.child(name).merge(node)

    def phase_seconds(self) -> dict[str, float]:
        """Top-level breakdown: each direct child's name -> seconds."""
        return {name: node.seconds for name, node in self.children.items()}

    def total_counter(self, name: str) -> int:
        """The counter summed over this span and every descendant."""
        return sum(node.counters.get(name, 0) for _, node in self.walk())

    # ------------------------------------------------------------------
    # Serialization / display
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, object]:
        payload: dict[str, object] = {
            "name": self.name,
            "seconds": self.seconds,
            "calls": self.calls,
        }
        if self.counters:
            payload["counters"] = dict(self.counters)
        if self.children:
            payload["children"] = [
                node.to_dict() for node in self.children.values()
            ]
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "Span":
        node = cls(str(payload["name"]))
        node.seconds = float(payload.get("seconds", 0.0))  # type: ignore[arg-type]
        node.calls = int(payload.get("calls", 0))  # type: ignore[arg-type]
        counters = payload.get("counters", {})
        if isinstance(counters, dict):
            node.counters = {str(k): int(v) for k, v in counters.items()}
        for child in payload.get("children", ()):  # type: ignore[union-attr]
            if isinstance(child, dict):
                restored = cls.from_dict(child)
                node.children[restored.name] = restored
        return node

    def render(self, indent: str = "  ") -> str:
        """Human-readable tree (seconds, calls, counters per line)."""
        lines = []
        for depth, node in self.walk():
            counters = ""
            if node.counters:
                pairs = ", ".join(
                    f"{key}={value}"
                    for key, value in sorted(node.counters.items())
                )
                counters = f"  [{pairs}]"
            lines.append(
                f"{indent * depth}{node.name}: {node.seconds:.6f}s "
                f"x{node.calls}{counters}"
            )
        return "\n".join(lines)


class Trace:
    """One run's span tree: a synthetic root plus helpers.

    The root itself is never timed (its ``seconds`` stay 0); its
    children are the run's top-level phases.
    """

    __slots__ = ("root",)

    def __init__(self, root: Span | None = None) -> None:
        self.root = root if root is not None else Span("root")

    def __getstate__(self) -> dict[str, object]:
        return {"root": self.root}

    def __setstate__(self, state: dict[str, object]) -> None:
        self.root = state["root"]  # type: ignore[assignment]

    def merge(self, other: "Trace") -> None:
        self.root.merge(other.root)

    def phase_seconds(self) -> dict[str, float]:
        return self.root.phase_seconds()

    def total_counter(self, name: str) -> int:
        return self.root.total_counter(name)

    def find(self, *path: str) -> Span | None:
        return self.root.find(*path)

    def to_dict(self) -> dict[str, object]:
        return self.root.to_dict()

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "Trace":
        return cls(Span.from_dict(payload))

    def render(self) -> str:
        return self.root.render()


# ----------------------------------------------------------------------
# Global state: the ambient trace + the dynamic span stack
# ----------------------------------------------------------------------
_enabled: bool = _env_enabled()
_TRACE = Trace()
_STACK: list[Span] = [_TRACE.root]


def enabled() -> bool:
    """Whether spans/counters record anything right now."""
    return _enabled


def set_enabled(value: bool | None) -> None:
    """Force telemetry on/off; ``None`` restores the env-var default."""
    global _enabled
    _enabled = _env_enabled() if value is None else bool(value)


def get_trace() -> Trace:
    """The ambient trace spans record into (process-global)."""
    return _TRACE


def current_span() -> Span:
    """The innermost open span (the trace root when none is open)."""
    return _STACK[-1]


def reset_trace() -> Trace:
    """Drop all recorded data and start a fresh ambient trace."""
    global _TRACE
    _TRACE = Trace()
    _STACK[:] = [_TRACE.root]
    return _TRACE


@contextmanager
def use_trace(trace: Trace) -> Iterator[Trace]:
    """Record into ``trace`` instead of the ambient one for the block.

    Used by the worker side of :func:`repro.parallel.map_tasks` to give
    every task an isolated subtrace (pool workers are long-lived, so
    recording into the worker's ambient trace would double-count once
    merged per task).
    """
    saved = _STACK[:]
    _STACK[:] = [trace.root]
    try:
        yield trace
    finally:
        _STACK[:] = saved


class _NullSpan:
    """Shared no-op context manager returned while telemetry is off."""

    __slots__ = ()

    def __enter__(self) -> Span:
        return _DISABLED_SPAN

    def __exit__(self, *exc_info: object) -> None:
        return None


class _SpanContext:
    __slots__ = ("_name", "_node", "_started")

    def __init__(self, name: str) -> None:
        self._name = name

    def __enter__(self) -> Span:
        node = _STACK[-1].child(self._name)
        self._node = node
        _STACK.append(node)
        self._started = time.perf_counter()
        return node

    def __exit__(self, *exc_info: object) -> None:
        self._node.seconds += time.perf_counter() - self._started
        self._node.calls += 1
        if _STACK[-1] is self._node:
            _STACK.pop()
        else:  # pragma: no cover - misnested exits (defensive)
            try:
                _STACK.remove(self._node)
            except ValueError:
                pass


_NULL_SPAN = _NullSpan()
#: Throwaway sink yielded by disabled spans (callers may read zeros off
#: it, but nothing it accumulates is ever reachable from a trace).
_DISABLED_SPAN = Span("<disabled>")


def span(name: str) -> "_SpanContext | _NullSpan":
    """Context manager timing one named phase on the ambient trace.

    Nest freely; the same name under the same parent accumulates.  When
    telemetry is disabled this returns a shared no-op manager, so a
    ``with span(...)`` at a phase boundary costs one function call and
    nothing else.
    """
    if not _enabled:
        return _NULL_SPAN
    return _SpanContext(name)


def count(name: str, value: int = 1) -> None:
    """Bump a monotonic counter on the innermost open span."""
    if not _enabled:
        return
    counters = _STACK[-1].counters
    counters[name] = counters.get(name, 0) + value


def absorb(trace: Trace | None) -> None:
    """Merge a shipped-back subtrace into the innermost open span.

    ``None`` (a worker that ran with telemetry off) is a no-op.  Callers
    merging several subtraces must do so in a deterministic order (task
    order) — :func:`repro.parallel.map_tasks` does.
    """
    if trace is None or not _enabled:
        return
    node = _STACK[-1]
    node.merge(trace.root)
    # The root carries no timing of its own; merging added 0.0 seconds
    # and 0 calls to ``node``, so only children/counters moved — which
    # is exactly what "the worker's phases happened here" means.
