"""repro — reproduction of "A Partitioning Methodology for Accelerating
Applications in Hybrid Reconfigurable Platforms" (Galanis, Milidonis,
Theodoridis, Soudris, Goutis; DATE 2004/05, AMDREL project).

The package implements the full methodology of the paper's Figure 2 plus
every substrate it depends on:

* :mod:`repro.frontend` — mini-C language frontend (lexer/parser/semantics),
  replacing the SUIF2/MachineSUIF + Lex toolchain;
* :mod:`repro.ir` — three-address IR, CFGs, per-block DFGs and the
  program-level CDFG (step 1);
* :mod:`repro.interp` — CFG interpreter with per-block profiling counters
  (the dynamic half of step 3);
* :mod:`repro.analysis` — weights, static/dynamic analysis, kernel
  extraction and ordering (step 3, Eq. 1);
* :mod:`repro.finegrain` — FPGA device model and the Figure 3 temporal
  partitioning algorithm with its timing model (steps 2, Eq. 4);
* :mod:`repro.coarsegrain` — the CGC data-path of ref. [6]: list
  scheduling, binding and timing (step 5, Eq. 3);
* :mod:`repro.partition` — the partitioning engine loop (step 4, Eq. 2);
* :mod:`repro.platform` — the generic hybrid platform of Figure 1;
* :mod:`repro.workloads` — the OFDM transmitter and JPEG encoder
  (mini-C implementations + Table 1-calibrated synthetic models) plus a
  parameterized synthetic application generator for scale studies;
* :mod:`repro.reporting` — experiment runners regenerating Tables 1-3
  and CSV/JSON export of exploration reports;
* :mod:`repro.explore` — parallel design-space exploration: declarative
  (workload × platform × constraint × algorithm) grids fanned out across
  worker processes on top of the incremental engine;
* :mod:`repro.search` — pluggable partitioning algorithms (greedy,
  exhaustive, multi-start, simulated annealing) over the shared
  incremental cost state, with Pareto-front multi-objective analysis;
* :mod:`repro.suite` — named end-to-end scenario registry, batched
  runner, persistent SQLite/JSON result store and the thresholded
  regression comparison CI gates on.

Quickstart::

    from repro import partition_application, paper_platform
    from repro.workloads import ofdm_workload

    result = partition_application(
        ofdm_workload(), paper_platform(afpga=1500, cgc_count=2),
        timing_constraint=35_000,
    )
    print(result.summary())
"""

from .analysis import (
    AnalysisResult,
    DynamicProfile,
    KernelInfo,
    WeightModel,
    extract_kernels,
    profile_cdfg,
)
from .coarsegrain import CGCDatapath, block_cgc_timing, schedule_dfg, standard_datapath
# NOTE: the explore() runner itself is not re-exported here — that would
# shadow the repro.explore submodule; use `from repro.explore import explore`.
from .explore import (
    DesignSpace,
    ExplorationReport,
    ExplorationResult,
    PlatformSpec,
    WorkloadSpec,
)
from .finegrain import FPGADevice, block_fpga_timing, partition_dfg
from .frontend import parse_program
from .interp import Interpreter, run_function
from .ir import CDFG, build_cdfg, cdfg_from_source
from .partition import (
    ApplicationWorkload,
    BlockWorkload,
    EngineConfig,
    EngineStats,
    PartitioningEngine,
    PartitionResult,
    partition_application,
    workload_from_cdfg,
)
from .platform import HybridPlatform, paper_platform
from .reporting import (
    reproduce_headline_claims,
    reproduce_table1_jpeg,
    reproduce_table1_ofdm,
    reproduce_table2,
    reproduce_table3,
)
from .search import (
    AlgorithmSpec,
    Partitioner,
    VisitedConfiguration,
    make_partitioner,
    pareto_front,
)
from .suite import (
    RegressionThresholds,
    ResultStore,
    Scenario,
    ScenarioResult,
    SuiteComparison,
    SuiteRun,
    compare_runs,
    run_suite,
)

__version__ = "1.0.0"

__all__ = [
    "AlgorithmSpec",
    "AnalysisResult",
    "ApplicationWorkload",
    "BlockWorkload",
    "CDFG",
    "CGCDatapath",
    "DesignSpace",
    "DynamicProfile",
    "EngineConfig",
    "EngineStats",
    "ExplorationReport",
    "ExplorationResult",
    "FPGADevice",
    "HybridPlatform",
    "Interpreter",
    "KernelInfo",
    "PartitionResult",
    "Partitioner",
    "PartitioningEngine",
    "PlatformSpec",
    "RegressionThresholds",
    "ResultStore",
    "Scenario",
    "ScenarioResult",
    "SuiteComparison",
    "SuiteRun",
    "VisitedConfiguration",
    "WeightModel",
    "WorkloadSpec",
    "block_cgc_timing",
    "block_fpga_timing",
    "build_cdfg",
    "cdfg_from_source",
    "compare_runs",
    "extract_kernels",
    "make_partitioner",
    "paper_platform",
    "pareto_front",
    "parse_program",
    "partition_application",
    "partition_dfg",
    "profile_cdfg",
    "reproduce_headline_claims",
    "reproduce_table1_jpeg",
    "reproduce_table1_ofdm",
    "reproduce_table2",
    "reproduce_table3",
    "run_function",
    "run_suite",
    "schedule_dfg",
    "standard_datapath",
    "workload_from_cdfg",
    "__version__",
]
