"""The constraint-independent greedy move trajectory.

The Figure 2 loop's decisions — visit order (Eq. 1 weight), the
unsupported-kernel skip, and the revert of moves that strictly worsen
Eq. 2 — depend only on the workload and platform, never on the timing
constraint.  This module owns that shared sequence: it is computed
lazily once and replayed for every constraint, which is what lets
``sweep()`` warm-start.

:class:`~repro.partition.engine.PartitioningEngine` runs on it in
incremental mode, and :class:`~repro.search.greedy.GreedyPartitioner`
delegates to the engine outright — so the paper flow and the
pluggable-algorithm protocol cannot drift apart (the differential suite
is the backstop, not the mechanism).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass
from typing import Callable, Protocol

from ..analysis.weights import WeightModel
from .costs import CostModel, CostState
from .result import PartitionResult, PartitionStep


class TickPricer(Protocol):
    """Anything pricing moves with the single-rounding cycle split —
    a :class:`CostModel` or a packed cost table."""

    def split_ticks(
        self, fpga_t: int, cgc_t: int, comm_t: int
    ) -> tuple[int, int, int, int]: ...

#: Trajectory entry actions.
MOVED = "moved"
REVERTED = "reverted"
SKIPPED = "skipped"


@dataclass(frozen=True)
class TrajectoryEntry:
    """One greedy decision plus the tick totals after it took effect."""

    bb_id: int
    action: str  # MOVED | REVERTED | SKIPPED
    fpga_ticks: int
    cgc_ticks: int
    comm_ticks: int

    @property
    def ticks(self) -> tuple[int, int, int]:
        return (self.fpga_ticks, self.cgc_ticks, self.comm_ticks)

    @property
    def total_ticks(self) -> int:
        return self.fpga_ticks + self.cgc_ticks + self.comm_ticks


class GreedyTrajectory:
    """Lazily extended, cached greedy decision sequence."""

    def __init__(
        self,
        model: CostModel,
        weight_model: WeightModel,
        *,
        skip_unsupported_kernels: bool = True,
        allow_regressing_moves: bool = False,
    ) -> None:
        self.model = model
        self.weight_model = weight_model
        self.skip_unsupported_kernels = skip_unsupported_kernels
        self.allow_regressing_moves = allow_regressing_moves
        self.entries: list[TrajectoryEntry] = []
        self._state: CostState | None = None
        self._pending: list | None = None
        self._next = 0
        self._done = False

    def _extend(self) -> bool:
        """Process the next greedy kernel; False when exhausted."""
        if self._done:
            return False
        if self._state is None:
            self._state = CostState(self.model)
        if self._pending is None:
            self._pending = self.model.kernel_candidates(self.weight_model)
        if self._next >= len(self._pending):
            self._done = True
            return False
        kernel = self._pending[self._next]
        state = self._state
        contribution = self.model.contribution(kernel)
        if not contribution.supported:
            if not self.skip_unsupported_kernels:
                # Raise while the kernel is still pending, so a retried
                # run() fails the same way instead of silently dropping it.
                raise ValueError(
                    f"kernel BB {kernel.bb_id} cannot execute on the "
                    "coarse-grain data-path"
                )
            action = SKIPPED
        elif contribution.move_delta > 0 and not self.allow_regressing_moves:
            # CGC + comm ticks exceed the FPGA ticks: the move strictly
            # worsens Eq. 2 for every constraint, so revert it.
            action = REVERTED
        else:
            action = MOVED
            state.apply_move(kernel.bb_id)
        self._next += 1
        self.entries.append(
            TrajectoryEntry(
                bb_id=kernel.bb_id,
                action=action,
                fpga_ticks=state.fpga_ticks,
                cgc_ticks=state.cgc_ticks,
                comm_ticks=state.comm_ticks,
            )
        )
        return True

    def iter_entries(self) -> Iterator[TrajectoryEntry]:
        """Replay cached entries, extending lazily on demand."""
        index = 0
        while True:
            while index >= len(self.entries):
                if not self._extend():
                    return
            yield self.entries[index]
            index += 1

    def replay(
        self,
        result: PartitionResult,
        timing_constraint: int,
        *,
        max_kernels_moved: int | None,
        stop_at_constraint: bool,
        on_skipped: Callable[[TrajectoryEntry], None] | None = None,
        on_reverted: Callable[[TrajectoryEntry], None] | None = None,
        on_committed: Callable[[TrajectoryEntry], None] | None = None,
    ) -> None:
        """Fill ``result`` by replaying decisions against one constraint."""
        replay_entries(
            self.model,
            self.iter_entries(),
            result,
            timing_constraint,
            max_kernels_moved=max_kernels_moved,
            stop_at_constraint=stop_at_constraint,
            on_skipped=on_skipped,
            on_reverted=on_reverted,
            on_committed=on_committed,
        )


def replay_entries(
    pricer: TickPricer,
    entries: Iterable[TrajectoryEntry],
    result: PartitionResult,
    timing_constraint: int,
    *,
    max_kernels_moved: int | None,
    stop_at_constraint: bool,
    on_skipped: Callable[[TrajectoryEntry], None] | None = None,
    on_reverted: Callable[[TrajectoryEntry], None] | None = None,
    on_committed: Callable[[TrajectoryEntry], None] | None = None,
) -> None:
    """Replay a greedy decision sequence against one constraint.

    ``pricer`` is anything with the ``split_ticks`` single-rounding
    cycle split (a :class:`CostModel` or a
    :class:`~repro.partition.packed.PackedCostTable`), so the object and
    packed greedy substrates share the exact replay semantics — budget
    check *before* each entry, skip/revert bookkeeping, early stop at
    the constraint.
    """
    for entry in entries:
        if (
            max_kernels_moved is not None
            and len(result.moved_bb_ids) >= max_kernels_moved
        ):
            break
        if entry.action == SKIPPED:
            result.skipped_bb_ids.append(entry.bb_id)
            if on_skipped is not None:
                on_skipped(entry)
            continue
        if entry.action == REVERTED:
            result.reverted_bb_ids.append(entry.bb_id)
            if on_reverted is not None:
                on_reverted(entry)
            continue
        met = commit_step(
            pricer, result, entry.bb_id, entry.ticks, timing_constraint
        )
        if on_committed is not None:
            on_committed(entry)
        if met and stop_at_constraint:
            break


def commit_step(
    pricer: TickPricer,
    result: PartitionResult,
    bb_id: int,
    ticks: tuple[int, int, int],
    timing_constraint: int,
) -> bool:
    """Append one committed move to ``result``; returns constraint_met.

    One shared implementation of the step bookkeeping (single-rounding
    cycle split, running result fields) for the engine and every search
    algorithm.  ``pricer`` is anything exposing ``split_ticks`` — a
    :class:`CostModel` or a packed cost table.
    """
    fpga_c, cgc_c, comm_c, total_c = pricer.split_ticks(*ticks)
    met = total_c <= timing_constraint
    result.steps.append(
        PartitionStep(
            moved_bb_id=bb_id,
            fpga_cycles=fpga_c,
            cgc_fpga_cycles=cgc_c,
            comm_cycles=comm_c,
            total_cycles=total_c,
            constraint_met=met,
        )
    )
    result.moved_bb_ids.append(bb_id)
    result.final_cycles = total_c
    result.fpga_cycles = fpga_c
    result.cycles_in_cgc = cgc_c
    result.comm_cycles = comm_c
    result.constraint_met = met
    return met
