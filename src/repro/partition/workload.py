"""Workload abstraction consumed by the partitioning engine.

The engine prices basic blocks on both fabrics; all it needs from an
application is, per block: a DFG, an execution frequency, and whether the
block is a kernel candidate (inside a loop).  Real applications produce
this via CDFG + profiling; the calibrated Table 1 workloads synthesize it
directly — either way the engine code path is identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.dynamic_analysis import DynamicProfile
from ..analysis.weights import WeightModel, total_weight
from ..ir.cdfg import CDFG
from ..ir.dfg import DataFlowGraph
from ..ir.loops import LoopForest


@dataclass
class BlockWorkload:
    """One basic block as seen by the partitioning engine.

    ``comm_words_in``/``comm_words_out`` are the scalar words exchanged
    through the shared data memory per invocation if this block executes on
    the coarse-grain data-path; by default they come from the DFG's
    live-in/live-out sets.
    """

    bb_id: int
    exec_freq: int
    dfg: DataFlowGraph
    is_kernel_candidate: bool = True
    comm_words_in: int | None = None
    comm_words_out: int | None = None
    name: str = ""

    def __post_init__(self) -> None:
        if self.exec_freq < 0:
            raise ValueError("execution frequency cannot be negative")
        if self.comm_words_in is None:
            self.comm_words_in = len(self.dfg.live_in_scalars)
        if self.comm_words_out is None:
            self.comm_words_out = len(self.dfg.live_out_scalars)

    def bb_weight(self, model: WeightModel) -> int:
        return model.dfg_weight(self.dfg)

    def total_weight(self, model: WeightModel) -> int:
        return total_weight(self.exec_freq, self.bb_weight(model))


@dataclass
class ApplicationWorkload:
    """A whole application: every basic block with its frequency."""

    name: str
    blocks: list[BlockWorkload] = field(default_factory=list)

    def __post_init__(self) -> None:
        # One walk both detects duplicates and builds the bb_id index
        # that makes block() O(1) (engine hot loops call it per move).
        self._by_id: dict[int, BlockWorkload] = {}
        for block in self.blocks:
            if block.bb_id in self._by_id:
                raise ValueError(f"duplicate BB id {block.bb_id}")
            self._by_id[block.bb_id] = block

    def block(self, bb_id: int) -> BlockWorkload:
        try:
            return self._by_id[bb_id]
        except KeyError:
            raise KeyError(f"no block with id {bb_id}") from None

    @property
    def block_count(self) -> int:
        return len(self.blocks)

    def iterations(self) -> dict[int, int]:
        return {block.bb_id: block.exec_freq for block in self.blocks}

    def kernel_candidates(self, model: WeightModel) -> list[BlockWorkload]:
        """Candidates ordered by descending total weight (Eq. 1 ordering)."""
        candidates = [
            block
            for block in self.blocks
            if block.is_kernel_candidate
            and block.exec_freq > 0
            and block.bb_weight(model) > 0
        ]
        candidates.sort(key=lambda b: (-b.total_weight(model), b.bb_id))
        return candidates

    def analysis_rows(
        self, model: WeightModel, count: int = 8
    ) -> list[tuple[int, int, int, int]]:
        """(bb_id, exec_freq, bb_weight, total_weight) rows — Table 1."""
        return [
            (
                block.bb_id,
                block.exec_freq,
                block.bb_weight(model),
                block.total_weight(model),
            )
            for block in self.kernel_candidates(model)[:count]
        ]


def workload_from_cdfg(
    cdfg: CDFG,
    profile: DynamicProfile,
    name: str = "application",
    require_loop: bool = True,
) -> ApplicationWorkload:
    """Build an engine workload from a real program + dynamic profile.

    Only executed blocks participate (blocks with zero frequency cannot
    affect Eq. 2–4).  Kernel candidacy follows §3.1: blocks inside loops.
    """
    depths: dict[int, int] = {}
    for function_name, cfg in cdfg.cfgs.items():
        forest = LoopForest(cfg)
        for block in cfg:
            depths[block.bb_id] = forest.loop_depth(block.label)

    blocks: list[BlockWorkload] = []
    for key in cdfg.all_block_keys():
        block = cdfg.block(key)
        freq = profile.exec_freq(block.bb_id)
        if freq == 0:
            continue
        dfg = cdfg.dfg(key)
        blocks.append(
            BlockWorkload(
                bb_id=block.bb_id,
                exec_freq=freq,
                dfg=dfg,
                is_kernel_candidate=(
                    depths.get(block.bb_id, 0) > 0 or not require_loop
                ),
                name=str(key),
            )
        )
    return ApplicationWorkload(name=name, blocks=blocks)
