"""Partitioning engine (paper §3.4, Figure 2 flow) and its data types."""

from .comm import (
    CommunicationCost,
    kernel_communication,
    total_communication_cycles,
)
from .costs import (
    BlockContribution,
    BlockCosts,
    CostModel,
    CostState,
    CostStats,
)
from .engine import (
    EngineConfig,
    EngineStats,
    PartitioningEngine,
    partition_application,
)
from .packed import (
    SUBSTRATE_NAMES,
    PackedCostState,
    PackedCostTable,
    PackedGreedyTrajectory,
    PackedVisitLog,
)
from .result import PartitionResult, PartitionStep
from .workload import (
    ApplicationWorkload,
    BlockWorkload,
    workload_from_cdfg,
)

__all__ = [
    "ApplicationWorkload",
    "BlockContribution",
    "BlockCosts",
    "BlockWorkload",
    "CommunicationCost",
    "CostModel",
    "CostState",
    "CostStats",
    "EngineConfig",
    "EngineStats",
    "PackedCostState",
    "PackedCostTable",
    "PackedGreedyTrajectory",
    "PackedVisitLog",
    "PartitionResult",
    "PartitionStep",
    "PartitioningEngine",
    "SUBSTRATE_NAMES",
    "kernel_communication",
    "partition_application",
    "total_communication_cycles",
    "workload_from_cdfg",
]
