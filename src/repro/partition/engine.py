"""The partitioning engine — paper §3.4 and the Figure 2 flow.

Flow implemented here:

1. Map the whole application to the fine-grain hardware (Figure 3 temporal
   partitioning per block) and compute the all-FPGA execution time.
2. If the timing constraint is met, exit — no partitioning needed.
3. Analysis: order kernel candidates by descending ``total_weight``
   (Eq. 1).
4. Move kernels one by one to the coarse-grain data-path.  After each
   move, recompute ``t_total = t_FPGA + t_coarse + t_comm`` (Eq. 2, with
   Eq. 3/4 aggregation) and stop as soon as the constraint is satisfied.
   A move whose CGC + communication ticks exceed the kernel's FPGA ticks
   strictly worsens Eq. 2 and is reverted (the paper's commit-always
   behaviour survives behind ``EngineConfig.allow_regressing_moves``).

Timebase: internally everything is accumulated in CGC ticks
(``1 FPGA cycle = clock_ratio ticks``) so arithmetic stays integral; the
result is reported in FPGA cycles (the paper's unit), rounding up.

Incremental aggregation
-----------------------
Eq. 2 is a sum of independent per-block terms, so a kernel move changes
the total by exactly that block's contribution: ``-t_FPGA(block)`` plus
``+t_coarse(block) + t_comm(block)``.  The engine therefore keeps running
FPGA/CGC/communication tick totals and applies an O(1) delta per move
(and per revert) instead of rescanning every block.  Because the greedy
order and the revert decisions are independent of the timing constraint,
the whole move *trajectory* is constraint-independent too: it is computed
lazily once per engine and replayed, so ``sweep()`` warm-starts every
constraint after the first from the shared prefix.

``EngineConfig.incremental=False`` selects the seed engine's O(blocks)
full-rescan aggregation — kept as a differential-testing reference and as
the baseline for the block-cost-evaluation benchmarks.  Both modes
produce identical :class:`PartitionResult`s. ``EngineStats`` counts how
many per-block cost evaluations each mode performed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.weights import WeightModel
from ..coarsegrain.timing import CoarseGrainBlockTiming, block_cgc_timing
from ..finegrain.timing import FineGrainBlockTiming, block_fpga_timing
from ..platform.soc import HybridPlatform
from .comm import CommunicationCost, kernel_communication
from .result import PartitionResult, PartitionStep
from .workload import ApplicationWorkload, BlockWorkload


@dataclass
class EngineConfig:
    """Tunables of the engine loop.

    Treat a config as frozen once its engine has run: the incremental
    mode bakes the flags into its cached move trajectory, so mutations
    after the first ``run()`` are not picked up.  Build a new engine (or
    a new config) instead.
    """

    max_kernels_moved: int | None = None
    stop_at_constraint: bool = True
    skip_unsupported_kernels: bool = True
    #: Charge the reconfiguration penalty even to blocks that fit in one
    #: temporal partition (disables configuration caching; ablation knob).
    charge_single_partition_reconfig: bool = False
    #: Commit kernel moves even when they increase the Eq. 2 total — the
    #: literal Figure 2 loop, which never reverts.  Ablation knob; the
    #: default reverts moves that strictly worsen the total.
    allow_regressing_moves: bool = False
    #: O(1) delta aggregation with a cached, constraint-independent move
    #: trajectory.  ``False`` falls back to the seed engine's full rescan
    #: of every block after every move (differential-testing reference).
    incremental: bool = True


@dataclass
class EngineStats:
    """Work counters for one engine instance (all runs accumulated)."""

    #: Per-block cost lookups performed for Eq. 2-4 aggregation.  The
    #: full-rescan mode pays O(blocks) of these per move; the incremental
    #: mode pays O(blocks) once plus O(1) per move.
    block_cost_evaluations: int = 0
    #: Blocks actually mapped onto both fabrics (cache misses).
    blocks_mapped: int = 0
    moves_committed: int = 0
    moves_reverted: int = 0
    kernels_skipped: int = 0
    #: ``run()`` calls that replayed at least one cached trajectory entry.
    warm_started_runs: int = 0


@dataclass
class _BlockCosts:
    """Cached per-block mapping results."""

    fine: FineGrainBlockTiming
    coarse: CoarseGrainBlockTiming | None
    comm: CommunicationCost


@dataclass(frozen=True)
class _BlockContribution:
    """One block's additive terms of Eq. 2, in CGC ticks."""

    fpga_ticks: int        # t_FPGA share while the block stays fine-grain
    cgc_ticks: int | None  # t_coarse share if moved (None: unsupported)
    comm_ticks: int        # t_comm share if moved

    @property
    def supported(self) -> bool:
        return self.cgc_ticks is not None

    @property
    def move_delta(self) -> int:
        """Change of the Eq. 2 total (in ticks) if this block moves."""
        assert self.cgc_ticks is not None
        return self.cgc_ticks + self.comm_ticks - self.fpga_ticks


#: Trajectory entry actions.
_MOVED = "moved"
_REVERTED = "reverted"
_SKIPPED = "skipped"


@dataclass(frozen=True)
class _TrajectoryEntry:
    """One greedy decision plus the tick totals after it took effect.

    The greedy order (Eq. 1) and the revert test (``move_delta > 0``)
    depend only on the workload and platform, never on the timing
    constraint, so this sequence is computed once per engine and replayed
    for every ``run()``.
    """

    bb_id: int
    action: str  # _MOVED | _REVERTED | _SKIPPED
    fpga_ticks: int
    cgc_ticks: int
    comm_ticks: int

    @property
    def total_ticks(self) -> int:
        return self.fpga_ticks + self.cgc_ticks + self.comm_ticks


class PartitioningEngine:
    """Runs the Figure 2 flow for one workload on one platform."""

    def __init__(
        self,
        workload: ApplicationWorkload,
        platform: HybridPlatform,
        weight_model: WeightModel | None = None,
        config: EngineConfig | None = None,
    ):
        self.workload = workload
        self.platform = platform
        self.weight_model = weight_model or WeightModel()
        self.config = config or EngineConfig()
        self.stats = EngineStats()
        self._costs: dict[int, _BlockCosts] = {}
        self._contribs: dict[int, _BlockContribution] = {}
        # Lazily built constraint-independent state (incremental mode).
        self._initial_ticks: int | None = None
        self._trajectory: list[_TrajectoryEntry] = []
        self._trajectory_done = False
        self._pending_kernels: list[BlockWorkload] | None = None
        self._next_kernel = 0  # cursor into _pending_kernels
        self._running: tuple[int, int, int] | None = None

    # ------------------------------------------------------------------
    # Per-block mapping (steps 2 and 5 of Figure 2)
    # ------------------------------------------------------------------
    def _block_costs(self, block: BlockWorkload) -> _BlockCosts:
        cached = self._costs.get(block.bb_id)
        if cached is not None:
            return cached
        self.stats.blocks_mapped += 1
        fine = block_fpga_timing(
            block.dfg,
            self.platform.fpga,
            self.platform.characterization,
            charge_single_partition=self.config.charge_single_partition_reconfig,
        )
        coarse: CoarseGrainBlockTiming | None = None
        if self.platform.datapath.supports_dfg(block.dfg):
            coarse = block_cgc_timing(block.dfg, self.platform.datapath)
        comm = kernel_communication(
            block, self.platform.memory, self.platform.interconnect
        )
        costs = _BlockCosts(fine=fine, coarse=coarse, comm=comm)
        self._costs[block.bb_id] = costs
        return costs

    def _contribution(self, block: BlockWorkload) -> _BlockContribution:
        """The block's Eq. 2 terms in ticks (counts one cost evaluation)."""
        self.stats.block_cost_evaluations += 1
        cached = self._contribs.get(block.bb_id)
        if cached is not None:
            return cached
        ratio = self.platform.clock_ratio
        costs = self._block_costs(block)
        contribution = _BlockContribution(
            fpga_ticks=costs.fine.total_cycles * block.exec_freq * ratio,
            cgc_ticks=(
                costs.coarse.cgc_cycles * block.exec_freq
                if costs.coarse is not None
                else None
            ),
            comm_ticks=costs.comm.total_cycles * ratio,
        )
        self._contribs[block.bb_id] = contribution
        return contribution

    # ------------------------------------------------------------------
    # Aggregation (Eqs. 2-4)
    # ------------------------------------------------------------------
    def _total_ticks(self, moved: set[int]) -> tuple[int, int, int, int]:
        """(fpga, cgc, comm, total) ticks via a full O(blocks) rescan.

        The seed engine's aggregation, retained as the reference the
        incremental path is differentially tested against.
        """
        fpga_ticks = 0
        cgc_ticks = 0
        comm_ticks = 0
        for block in self.workload.blocks:
            contribution = self._contribution(block)
            if block.bb_id in moved:
                assert contribution.cgc_ticks is not None
                cgc_ticks += contribution.cgc_ticks
                comm_ticks += contribution.comm_ticks
            else:
                fpga_ticks += contribution.fpga_ticks
        return fpga_ticks, cgc_ticks, comm_ticks, fpga_ticks + cgc_ticks + comm_ticks

    def _ticks_to_cycles(self, ticks: int) -> int:
        ratio = self.platform.clock_ratio
        return -(-ticks // ratio)  # ceil

    def _split_ticks(
        self, fpga_t: int, cgc_t: int, comm_t: int
    ) -> tuple[int, int, int, int]:
        """(fpga, cgc, comm, total) FPGA cycles, rounded *once*.

        The total is the ceiling of the summed ticks; the three component
        cycle counts are apportioned so they always sum exactly to it
        (largest-remainder rounding), instead of ceiling each term
        independently and drifting from the total.
        """
        ratio = self.platform.clock_ratio
        total_cycles = self._ticks_to_cycles(fpga_t + cgc_t + comm_t)
        parts = [fpga_t // ratio, cgc_t // ratio, comm_t // ratio]
        remainders = [fpga_t % ratio, cgc_t % ratio, comm_t % ratio]
        leftover = total_cycles - sum(parts)
        for index in sorted(range(3), key=lambda i: (-remainders[i], i))[:leftover]:
            parts[index] += 1
        return parts[0], parts[1], parts[2], total_cycles

    # ------------------------------------------------------------------
    # Constraint-independent move trajectory (incremental mode)
    # ------------------------------------------------------------------
    def _ensure_initial_ticks(self) -> int:
        if self._initial_ticks is None:
            self._initial_ticks = sum(
                self._contribution(block).fpga_ticks
                for block in self.workload.blocks
            )
            self._running = (self._initial_ticks, 0, 0)
        return self._initial_ticks

    def _extend_trajectory(self) -> bool:
        """Process the next greedy kernel; False when exhausted."""
        if self._trajectory_done:
            return False
        self._ensure_initial_ticks()
        if self._pending_kernels is None:
            self._pending_kernels = list(
                self.workload.kernel_candidates(self.weight_model)
            )
        if self._next_kernel >= len(self._pending_kernels):
            self._trajectory_done = True
            return False
        kernel = self._pending_kernels[self._next_kernel]
        assert self._running is not None
        fpga_t, cgc_t, comm_t = self._running
        contribution = self._contribution(kernel)
        if not contribution.supported:
            if not self.config.skip_unsupported_kernels:
                # Raise while the kernel is still pending, so a retried
                # run() fails the same way instead of silently dropping it.
                raise ValueError(
                    f"kernel BB {kernel.bb_id} cannot execute on the "
                    "coarse-grain data-path"
                )
            action = _SKIPPED
        elif (
            contribution.move_delta > 0
            and not self.config.allow_regressing_moves
        ):
            # CGC + comm ticks exceed the FPGA ticks: the move strictly
            # worsens Eq. 2 for every constraint, so revert it.
            action = _REVERTED
        else:
            action = _MOVED
            assert contribution.cgc_ticks is not None
            fpga_t -= contribution.fpga_ticks
            cgc_t += contribution.cgc_ticks
            comm_t += contribution.comm_ticks
            self._running = (fpga_t, cgc_t, comm_t)
        self._next_kernel += 1
        self._trajectory.append(
            _TrajectoryEntry(
                bb_id=kernel.bb_id,
                action=action,
                fpga_ticks=fpga_t,
                cgc_ticks=cgc_t,
                comm_ticks=comm_t,
            )
        )
        return True

    def _iter_trajectory(self):
        """Replay cached trajectory entries, extending lazily on demand."""
        if self._trajectory:
            self.stats.warm_started_runs += 1
        index = 0
        while True:
            while index >= len(self._trajectory):
                if not self._extend_trajectory():
                    return
            yield self._trajectory[index]
            index += 1

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def initial_cycles(self) -> int:
        """All-FPGA execution time in FPGA cycles (Table 2/3 row 1)."""
        if not self.config.incremental:
            __, __, __, total = self._total_ticks(set())
            return self._ticks_to_cycles(total)
        return self._ticks_to_cycles(self._ensure_initial_ticks())

    def run(self, timing_constraint: int) -> PartitionResult:
        """Execute the Figure 2 loop against a timing constraint
        expressed in FPGA clock cycles."""
        if timing_constraint <= 0:
            raise ValueError("timing constraint must be positive")

        initial = self.initial_cycles()
        result = PartitionResult(
            workload_name=self.workload.name,
            platform_name=self.platform.name,
            timing_constraint=timing_constraint,
            initial_cycles=initial,
            final_cycles=initial,
            cycles_in_cgc=0,
            comm_cycles=0,
            fpga_cycles=initial,
        )
        if initial <= timing_constraint:
            result.constraint_met = True
            return result

        if self.config.incremental:
            self._run_incremental(timing_constraint, result)
        else:
            self._run_full_rescan(timing_constraint, result)
        result.validate()
        return result

    def _commit_step(
        self,
        result: PartitionResult,
        bb_id: int,
        ticks: tuple[int, int, int],
        timing_constraint: int,
    ) -> bool:
        """Record one committed move; returns constraint_met."""
        fpga_c, cgc_c, comm_c, total_c = self._split_ticks(*ticks)
        met = total_c <= timing_constraint
        result.steps.append(
            PartitionStep(
                moved_bb_id=bb_id,
                fpga_cycles=fpga_c,
                cgc_fpga_cycles=cgc_c,
                comm_cycles=comm_c,
                total_cycles=total_c,
                constraint_met=met,
            )
        )
        result.moved_bb_ids.append(bb_id)
        result.final_cycles = total_c
        result.fpga_cycles = fpga_c
        result.cycles_in_cgc = cgc_c
        result.comm_cycles = comm_c
        result.constraint_met = met
        self.stats.moves_committed += 1
        return met

    def _run_incremental(
        self, timing_constraint: int, result: PartitionResult
    ) -> None:
        for entry in self._iter_trajectory():
            if (
                self.config.max_kernels_moved is not None
                and len(result.moved_bb_ids) >= self.config.max_kernels_moved
            ):
                break
            if entry.action == _SKIPPED:
                result.skipped_bb_ids.append(entry.bb_id)
                self.stats.kernels_skipped += 1
                continue
            if entry.action == _REVERTED:
                result.reverted_bb_ids.append(entry.bb_id)
                self.stats.moves_reverted += 1
                continue
            met = self._commit_step(
                result,
                entry.bb_id,
                (entry.fpga_ticks, entry.cgc_ticks, entry.comm_ticks),
                timing_constraint,
            )
            if met and self.config.stop_at_constraint:
                break

    def _run_full_rescan(
        self, timing_constraint: int, result: PartitionResult
    ) -> None:
        """The seed engine's loop: O(blocks) rescan after every move."""
        kernels = self.workload.kernel_candidates(self.weight_model)
        moved: set[int] = set()
        __, __, __, previous_total = self._total_ticks(moved)
        for kernel in kernels:
            if (
                self.config.max_kernels_moved is not None
                and len(moved) >= self.config.max_kernels_moved
            ):
                break
            costs = self._block_costs(kernel)
            if costs.coarse is None:
                if not self.config.skip_unsupported_kernels:
                    raise ValueError(
                        f"kernel BB {kernel.bb_id} cannot execute on the "
                        "coarse-grain data-path"
                    )
                result.skipped_bb_ids.append(kernel.bb_id)
                self.stats.kernels_skipped += 1
                continue

            moved.add(kernel.bb_id)
            fpga_t, cgc_t, comm_t, total_t = self._total_ticks(moved)
            if (
                total_t > previous_total
                and not self.config.allow_regressing_moves
            ):
                moved.discard(kernel.bb_id)
                result.reverted_bb_ids.append(kernel.bb_id)
                self.stats.moves_reverted += 1
                continue
            previous_total = total_t
            met = self._commit_step(
                result, kernel.bb_id, (fpga_t, cgc_t, comm_t), timing_constraint
            )
            if met and self.config.stop_at_constraint:
                break

    def sweep(self, constraints: list[int]) -> list[PartitionResult]:
        """Run the engine at several timing constraints.

        In incremental mode every constraint after the first warm-starts
        from the cached move trajectory (the greedy order is
        constraint-independent), so the marginal cost of an extra
        constraint is O(moves replayed), with zero new block-cost
        evaluations once the trajectory covers it.
        """
        return [self.run(constraint) for constraint in constraints]


def partition_application(
    workload: ApplicationWorkload,
    platform: HybridPlatform,
    timing_constraint: int,
    weight_model: WeightModel | None = None,
    config: EngineConfig | None = None,
) -> PartitionResult:
    """One-shot convenience wrapper around :class:`PartitioningEngine`."""
    engine = PartitioningEngine(workload, platform, weight_model, config)
    return engine.run(timing_constraint)
