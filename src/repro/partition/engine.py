"""The partitioning engine — paper §3.4 and the Figure 2 flow.

Flow implemented here:

1. Map the whole application to the fine-grain hardware (Figure 3 temporal
   partitioning per block) and compute the all-FPGA execution time.
2. If the timing constraint is met, exit — no partitioning needed.
3. Analysis: order kernel candidates by descending ``total_weight``
   (Eq. 1).
4. Move kernels one by one to the coarse-grain data-path.  After each
   move, recompute ``t_total = t_FPGA + t_coarse + t_comm`` (Eq. 2, with
   Eq. 3/4 aggregation) and stop as soon as the constraint is satisfied.

Timebase: internally everything is accumulated in CGC ticks
(``1 FPGA cycle = clock_ratio ticks``) so arithmetic stays integral; the
result is reported in FPGA cycles (the paper's unit), rounding up.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.weights import WeightModel
from ..coarsegrain.timing import CoarseGrainBlockTiming, block_cgc_timing
from ..finegrain.timing import FineGrainBlockTiming, block_fpga_timing
from ..platform.soc import HybridPlatform
from .comm import CommunicationCost, kernel_communication
from .result import PartitionResult, PartitionStep
from .workload import ApplicationWorkload, BlockWorkload


@dataclass
class EngineConfig:
    """Tunables of the engine loop."""

    max_kernels_moved: int | None = None
    stop_at_constraint: bool = True
    skip_unsupported_kernels: bool = True
    #: Charge the reconfiguration penalty even to blocks that fit in one
    #: temporal partition (disables configuration caching; ablation knob).
    charge_single_partition_reconfig: bool = False


@dataclass
class _BlockCosts:
    """Cached per-block mapping results."""

    fine: FineGrainBlockTiming
    coarse: CoarseGrainBlockTiming | None
    comm: CommunicationCost


class PartitioningEngine:
    """Runs the Figure 2 flow for one workload on one platform."""

    def __init__(
        self,
        workload: ApplicationWorkload,
        platform: HybridPlatform,
        weight_model: WeightModel | None = None,
        config: EngineConfig | None = None,
    ):
        self.workload = workload
        self.platform = platform
        self.weight_model = weight_model or WeightModel()
        self.config = config or EngineConfig()
        self._costs: dict[int, _BlockCosts] = {}

    # ------------------------------------------------------------------
    # Per-block mapping (steps 2 and 5 of Figure 2)
    # ------------------------------------------------------------------
    def _block_costs(self, block: BlockWorkload) -> _BlockCosts:
        cached = self._costs.get(block.bb_id)
        if cached is not None:
            return cached
        fine = block_fpga_timing(
            block.dfg,
            self.platform.fpga,
            self.platform.characterization,
            charge_single_partition=self.config.charge_single_partition_reconfig,
        )
        coarse: CoarseGrainBlockTiming | None = None
        if self.platform.datapath.supports_dfg(block.dfg):
            coarse = block_cgc_timing(block.dfg, self.platform.datapath)
        comm = kernel_communication(
            block, self.platform.memory, self.platform.interconnect
        )
        costs = _BlockCosts(fine=fine, coarse=coarse, comm=comm)
        self._costs[block.bb_id] = costs
        return costs

    # ------------------------------------------------------------------
    # Aggregation (Eqs. 2-4)
    # ------------------------------------------------------------------
    def _total_ticks(self, moved: set[int]) -> tuple[int, int, int, int]:
        """(fpga, cgc, comm, total) in CGC ticks for a given move set."""
        ratio = self.platform.clock_ratio
        fpga_ticks = 0
        cgc_ticks = 0
        comm_ticks = 0
        for block in self.workload.blocks:
            costs = self._block_costs(block)
            if block.bb_id in moved:
                assert costs.coarse is not None
                cgc_ticks += costs.coarse.cgc_cycles * block.exec_freq
                comm_ticks += costs.comm.total_cycles * ratio
            else:
                fpga_ticks += (
                    costs.fine.total_cycles * block.exec_freq * ratio
                )
        return fpga_ticks, cgc_ticks, comm_ticks, fpga_ticks + cgc_ticks + comm_ticks

    def _ticks_to_cycles(self, ticks: int) -> int:
        ratio = self.platform.clock_ratio
        return -(-ticks // ratio)  # ceil

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def initial_cycles(self) -> int:
        """All-FPGA execution time in FPGA cycles (Table 2/3 row 1)."""
        __, __, __, total = self._total_ticks(set())
        return self._ticks_to_cycles(total)

    def run(self, timing_constraint: int) -> PartitionResult:
        """Execute the Figure 2 loop against a timing constraint
        expressed in FPGA clock cycles."""
        if timing_constraint <= 0:
            raise ValueError("timing constraint must be positive")

        initial = self.initial_cycles()
        result = PartitionResult(
            workload_name=self.workload.name,
            platform_name=self.platform.name,
            timing_constraint=timing_constraint,
            initial_cycles=initial,
            final_cycles=initial,
            cycles_in_cgc=0,
            comm_cycles=0,
            fpga_cycles=initial,
        )
        if initial <= timing_constraint:
            result.constraint_met = True
            return result

        kernels = self.workload.kernel_candidates(self.weight_model)
        moved: set[int] = set()
        for kernel in kernels:
            if (
                self.config.max_kernels_moved is not None
                and len(moved) >= self.config.max_kernels_moved
            ):
                break
            costs = self._block_costs(kernel)
            if costs.coarse is None:
                if not self.config.skip_unsupported_kernels:
                    raise ValueError(
                        f"kernel BB {kernel.bb_id} cannot execute on the "
                        "coarse-grain data-path"
                    )
                result.skipped_bb_ids.append(kernel.bb_id)
                continue

            moved.add(kernel.bb_id)
            fpga_t, cgc_t, comm_t, total_t = self._total_ticks(moved)
            total_cycles = self._ticks_to_cycles(total_t)
            met = total_cycles <= timing_constraint
            result.steps.append(
                PartitionStep(
                    moved_bb_id=kernel.bb_id,
                    fpga_cycles=self._ticks_to_cycles(fpga_t),
                    cgc_fpga_cycles=self._ticks_to_cycles(cgc_t),
                    comm_cycles=self._ticks_to_cycles(comm_t),
                    total_cycles=total_cycles,
                    constraint_met=met,
                )
            )
            result.moved_bb_ids.append(kernel.bb_id)
            result.final_cycles = total_cycles
            result.fpga_cycles = self._ticks_to_cycles(fpga_t)
            result.cycles_in_cgc = self._ticks_to_cycles(cgc_t)
            result.comm_cycles = self._ticks_to_cycles(comm_t)
            result.constraint_met = met
            if met and self.config.stop_at_constraint:
                break
        return result

    def sweep(self, constraints: list[int]) -> list[PartitionResult]:
        """Run the engine at several timing constraints (cost cached)."""
        return [self.run(constraint) for constraint in constraints]


def partition_application(
    workload: ApplicationWorkload,
    platform: HybridPlatform,
    timing_constraint: int,
    weight_model: WeightModel | None = None,
    config: EngineConfig | None = None,
) -> PartitionResult:
    """One-shot convenience wrapper around :class:`PartitioningEngine`."""
    engine = PartitioningEngine(workload, platform, weight_model, config)
    return engine.run(timing_constraint)
