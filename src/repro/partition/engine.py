"""The partitioning engine — paper §3.4 and the Figure 2 flow.

Flow implemented here:

1. Map the whole application to the fine-grain hardware (Figure 3 temporal
   partitioning per block) and compute the all-FPGA execution time.
2. If the timing constraint is met, exit — no partitioning needed.
3. Analysis: order kernel candidates by descending ``total_weight``
   (Eq. 1).
4. Move kernels one by one to the coarse-grain data-path.  After each
   move, recompute ``t_total = t_FPGA + t_coarse + t_comm`` (Eq. 2, with
   Eq. 3/4 aggregation) and stop as soon as the constraint is satisfied.
   A move whose CGC + communication ticks exceed the kernel's FPGA ticks
   strictly worsens Eq. 2 and is reverted (the paper's commit-always
   behaviour survives behind ``EngineConfig.allow_regressing_moves``).

Incremental aggregation
-----------------------
Per-block pricing and the O(1) delta bookkeeping live in
:mod:`repro.partition.costs` (:class:`CostModel` / :class:`CostState`),
shared with the :mod:`repro.search` algorithms.  Because the greedy order
and the revert decisions are independent of the timing constraint, the
whole move *trajectory* is constraint-independent too
(:mod:`repro.partition.trajectory`): it is computed lazily once per
engine and replayed, so ``sweep()`` warm-starts every constraint after
the first from the shared prefix.

``EngineConfig.incremental=False`` selects the seed engine's O(blocks)
full-rescan aggregation — kept as a differential-testing reference and as
the baseline for the block-cost-evaluation benchmarks.  Both modes
produce identical :class:`PartitionResult`s. ``EngineStats`` counts how
many per-block cost evaluations each mode performed.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from ..analysis.weights import WeightModel
from ..platform.soc import HybridPlatform
from .costs import CostModel
from .packed import SUBSTRATE_NAMES
from .result import PartitionResult
from .trajectory import GreedyTrajectory, commit_step
from .workload import ApplicationWorkload


@dataclass
class EngineConfig:
    """Tunables of the engine loop.

    A config is frozen once its engine has run: the incremental mode
    bakes the flags into its cached move trajectory, so the engine
    snapshots the config at the first ``run()`` / ``initial_cycles()``
    and raises on any later mutation instead of silently ignoring it.
    Build a new engine (or a new config) instead.
    """

    max_kernels_moved: int | None = None
    stop_at_constraint: bool = True
    skip_unsupported_kernels: bool = True
    #: Charge the reconfiguration penalty even to blocks that fit in one
    #: temporal partition (disables configuration caching; ablation knob).
    charge_single_partition_reconfig: bool = False
    #: Commit kernel moves even when they increase the Eq. 2 total — the
    #: literal Figure 2 loop, which never reverts.  Ablation knob; the
    #: default reverts moves that strictly worsen the total.
    allow_regressing_moves: bool = False
    #: O(1) delta aggregation with a cached, constraint-independent move
    #: trajectory.  ``False`` falls back to the seed engine's full rescan
    #: of every block after every move (differential-testing reference).
    incremental: bool = True
    #: Pricing substrate the :mod:`repro.search` algorithms run on:
    #: ``"packed"`` evaluates configurations on a
    #: :class:`~repro.partition.packed.PackedCostTable` (flat columns,
    #: bitmask subsets — the fast path), ``"object"`` on the
    #: :class:`CostModel`/:class:`CostState` object substrate (the
    #: differential reference).  The engine itself always runs on the
    #: object substrate; this flag steers the search layer.
    substrate: str = "packed"
    #: Worker-process cap for search modes that fan out (the sharded
    #: exhaustive walk).  ``None`` sizes to the machine's cores; ``1``
    #: forces an in-process serial run.  Results are bit-identical
    #: regardless of the value — it only bounds parallelism.
    search_workers: int | None = None

    def __post_init__(self) -> None:
        if self.substrate not in SUBSTRATE_NAMES:
            raise ValueError(
                f"unknown substrate {self.substrate!r}; expected one of "
                f"{SUBSTRATE_NAMES}"
            )
        if self.search_workers is not None and self.search_workers < 1:
            raise ValueError("search_workers must be >= 1")


@dataclass
class EngineStats:
    """Work counters for one engine instance (all runs accumulated)."""

    #: Per-block contributions actually computed (cache misses).
    block_cost_evaluations: int = 0
    #: Per-block contribution lookups, hits included.  The full-rescan
    #: mode pays O(blocks) of these per move; the incremental mode pays
    #: O(blocks) once plus O(1) per move.
    contribution_lookups: int = 0
    #: Blocks actually mapped onto both fabrics (cache misses).
    blocks_mapped: int = 0
    moves_committed: int = 0
    moves_reverted: int = 0
    kernels_skipped: int = 0
    #: ``run()`` calls that replayed at least one cached trajectory entry.
    warm_started_runs: int = 0


class PartitioningEngine:
    """Runs the Figure 2 flow for one workload on one platform."""

    def __init__(
        self,
        workload: ApplicationWorkload,
        platform: HybridPlatform,
        weight_model: WeightModel | None = None,
        config: EngineConfig | None = None,
    ) -> None:
        self.workload = workload
        self.platform = platform
        self.weight_model = weight_model or WeightModel()
        self.config = config or EngineConfig()
        self.stats = EngineStats()
        self._config_snapshot: EngineConfig | None = None
        self._cost_model: CostModel | None = None
        # Lazily built constraint-independent state (incremental mode).
        self._trajectory: GreedyTrajectory | None = None

    # ------------------------------------------------------------------
    # Config freeze + cost model
    # ------------------------------------------------------------------
    def _freeze_config(self) -> None:
        """Snapshot the config on first use; reject later mutations.

        The cached cost terms and move trajectory bake the config flags
        in, so a mutated config would silently be ignored — raising keeps
        the documented freeze-after-run contract honest.
        """
        if self._config_snapshot is None:
            self._config_snapshot = dataclasses.replace(self.config)
        elif self.config != self._config_snapshot:
            raise ValueError(
                "EngineConfig mutated after the engine ran; its flags are "
                "baked into cached state — build a new PartitioningEngine "
                "for a different configuration"
            )

    @property
    def cost_model(self) -> CostModel:
        """The shared pricing substrate (created on first use)."""
        if self._cost_model is None:
            self._cost_model = CostModel(
                self.workload,
                self.platform,
                charge_single_partition_reconfig=(
                    self.config.charge_single_partition_reconfig
                ),
                stats=self.stats,
            )
        return self._cost_model

    @property
    def trajectory(self) -> GreedyTrajectory:
        """The shared constraint-independent greedy decision sequence."""
        if self._trajectory is None:
            self._trajectory = GreedyTrajectory(
                self.cost_model,
                self.weight_model,
                skip_unsupported_kernels=self.config.skip_unsupported_kernels,
                allow_regressing_moves=self.config.allow_regressing_moves,
            )
        return self._trajectory

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def initial_cycles(self) -> int:
        """All-FPGA execution time in FPGA cycles (Table 2/3 row 1)."""
        self._freeze_config()
        return self.cost_model.initial_cycles()

    def run(self, timing_constraint: int) -> PartitionResult:
        """Execute the Figure 2 loop against a timing constraint
        expressed in FPGA clock cycles."""
        if timing_constraint <= 0:
            raise ValueError("timing constraint must be positive")

        result = PartitionResult.all_fpga(
            self.workload.name,
            self.platform.name,
            timing_constraint,
            self.initial_cycles(),
        )
        if result.constraint_met:
            return result

        if self.config.incremental:
            self._run_incremental(timing_constraint, result)
        else:
            self._run_full_rescan(timing_constraint, result)
        result.validate()
        return result

    def _run_incremental(
        self, timing_constraint: int, result: PartitionResult
    ) -> None:
        trajectory = self.trajectory
        if trajectory.entries:
            self.stats.warm_started_runs += 1
        trajectory.replay(
            result,
            timing_constraint,
            max_kernels_moved=self.config.max_kernels_moved,
            stop_at_constraint=self.config.stop_at_constraint,
            on_skipped=lambda e: self._count("kernels_skipped"),
            on_reverted=lambda e: self._count("moves_reverted"),
            on_committed=lambda e: self._count("moves_committed"),
        )

    def _count(self, counter: str) -> None:
        setattr(self.stats, counter, getattr(self.stats, counter) + 1)

    def _run_full_rescan(
        self, timing_constraint: int, result: PartitionResult
    ) -> None:
        """The seed engine's loop: O(blocks) rescan after every move."""
        model = self.cost_model
        kernels = model.kernel_candidates(self.weight_model)
        moved: set[int] = set()

        def total_ticks() -> tuple[int, int, int, int]:
            """(fpga, cgc, comm, total) via a full O(blocks) rescan."""
            fpga_t = cgc_t = comm_t = 0
            for block in self.workload.blocks:
                contribution = model.contribution(block)
                if block.bb_id in moved:
                    assert contribution.cgc_ticks is not None
                    cgc_t += contribution.cgc_ticks
                    comm_t += contribution.comm_ticks
                else:
                    fpga_t += contribution.fpga_ticks
            return fpga_t, cgc_t, comm_t, fpga_t + cgc_t + comm_t

        __, __, __, previous_total = total_ticks()
        for kernel in kernels:
            if (
                self.config.max_kernels_moved is not None
                and len(moved) >= self.config.max_kernels_moved
            ):
                break
            costs = model.block_costs(kernel)
            if costs.coarse is None:
                if not self.config.skip_unsupported_kernels:
                    raise ValueError(
                        f"kernel BB {kernel.bb_id} cannot execute on the "
                        "coarse-grain data-path"
                    )
                result.skipped_bb_ids.append(kernel.bb_id)
                self.stats.kernels_skipped += 1
                continue

            moved.add(kernel.bb_id)
            fpga_t, cgc_t, comm_t, total_t = total_ticks()
            if (
                total_t > previous_total
                and not self.config.allow_regressing_moves
            ):
                moved.discard(kernel.bb_id)
                result.reverted_bb_ids.append(kernel.bb_id)
                self.stats.moves_reverted += 1
                continue
            previous_total = total_t
            met = commit_step(
                model,
                result,
                kernel.bb_id,
                (fpga_t, cgc_t, comm_t),
                timing_constraint,
            )
            self.stats.moves_committed += 1
            if met and self.config.stop_at_constraint:
                break

    def sweep(self, constraints: list[int]) -> list[PartitionResult]:
        """Run the engine at several timing constraints.

        In incremental mode every constraint after the first warm-starts
        from the cached move trajectory (the greedy order is
        constraint-independent), so the marginal cost of an extra
        constraint is O(moves replayed), with zero new block-cost
        evaluations once the trajectory covers it.
        """
        return [self.run(constraint) for constraint in constraints]


def partition_application(
    workload: ApplicationWorkload,
    platform: HybridPlatform,
    timing_constraint: int,
    weight_model: WeightModel | None = None,
    config: EngineConfig | None = None,
) -> PartitionResult:
    """One-shot convenience wrapper around :class:`PartitioningEngine`."""
    engine = PartitioningEngine(workload, platform, weight_model, config)
    return engine.run(timing_constraint)
