"""Partitioning outcomes: per-step records and the final result.

Field names mirror the rows of the paper's Tables 2 and 3 so the benchmark
harness can print them directly: initial cycles (all-FPGA), cycles in CGC,
moved BB numbers, final cycles, percentage reduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class PartitionStep:
    """State after moving one kernel to the coarse-grain hardware.

    The three component cycle counts are apportioned from one rounding of
    the summed tick total, so ``fpga + cgc + comm == total`` always holds
    (enforced here).
    """

    moved_bb_id: int
    fpga_cycles: int      # t_FPGA of the blocks still on the FPGA
    cgc_fpga_cycles: int  # t_coarse expressed in FPGA cycles
    comm_cycles: int      # t_comm in FPGA cycles
    total_cycles: int     # Eq. 2 total
    constraint_met: bool

    def __post_init__(self) -> None:
        components = self.fpga_cycles + self.cgc_fpga_cycles + self.comm_cycles
        if components != self.total_cycles:
            raise ValueError(
                f"step for BB {self.moved_bb_id} inconsistent: components "
                f"sum to {components}, total is {self.total_cycles}"
            )


@dataclass
class PartitionResult:
    """Full outcome of one engine run (one row-set of Table 2/3)."""

    workload_name: str
    platform_name: str
    timing_constraint: int
    initial_cycles: int
    final_cycles: int
    cycles_in_cgc: int
    comm_cycles: int
    fpga_cycles: int
    moved_bb_ids: list[int] = field(default_factory=list)
    steps: list[PartitionStep] = field(default_factory=list)
    constraint_met: bool = False
    skipped_bb_ids: list[int] = field(default_factory=list)
    #: Kernels whose move strictly worsened Eq. 2 and was undone (empty
    #: when ``EngineConfig.allow_regressing_moves`` is set).
    reverted_bb_ids: list[int] = field(default_factory=list)
    #: True when the search stopped early (expired deadline) and this is
    #: a best-so-far answer rather than the algorithm's full result; an
    #: exhaustive/branch-and-bound result with ``partial=True`` is NOT a
    #: certified optimum.
    partial: bool = False

    @classmethod
    def all_fpga(
        cls,
        workload_name: str,
        platform_name: str,
        timing_constraint: int,
        initial_cycles: int,
    ) -> "PartitionResult":
        """The starting point of every search: everything fine-grain.

        ``constraint_met`` reflects whether the all-FPGA mapping already
        satisfies the constraint (the Figure 2 early exit).
        """
        return cls(
            workload_name=workload_name,
            platform_name=platform_name,
            timing_constraint=timing_constraint,
            initial_cycles=initial_cycles,
            final_cycles=initial_cycles,
            cycles_in_cgc=0,
            comm_cycles=0,
            fpga_cycles=initial_cycles,
            constraint_met=initial_cycles <= timing_constraint,
        )

    @property
    def certified(self) -> bool:
        """Whether the algorithm ran to completion (its usual guarantee
        — optimality for exhaustive search — holds only when True)."""
        return not self.partial

    @property
    def reduction_percent(self) -> float:
        """The "% cycles reduction" row: vs. the all-FPGA mapping."""
        if self.initial_cycles == 0:
            return 0.0
        return 100.0 * (self.initial_cycles - self.final_cycles) / self.initial_cycles

    @property
    def kernels_moved(self) -> int:
        return len(self.moved_bb_ids)

    def validate(self) -> None:
        """Check the Eq. 2 bookkeeping invariants; raises ``ValueError``.

        Every step's components must sum to its total (already enforced
        per step), the result-level components must sum to
        ``final_cycles``, and the moved-BB list must mirror the steps.
        """
        components = self.fpga_cycles + self.cycles_in_cgc + self.comm_cycles
        if components != self.final_cycles:
            raise ValueError(
                f"result inconsistent: components sum to {components}, "
                f"final_cycles is {self.final_cycles}"
            )
        if [step.moved_bb_id for step in self.steps] != self.moved_bb_ids:
            raise ValueError("steps and moved_bb_ids disagree")
        if set(self.reverted_bb_ids) & set(self.moved_bb_ids):
            raise ValueError("a BB cannot be both moved and reverted")

    def table_row(self) -> dict[str, object]:
        """The Table 2/3 column set for this configuration."""
        return {
            "initial_cycles": self.initial_cycles,
            "cycles_in_cgc": self.cycles_in_cgc,
            "bb_no": list(self.moved_bb_ids),
            "final_cycles": self.final_cycles,
            "reduction_percent": round(self.reduction_percent, 1),
        }

    def summary(self) -> str:
        moved = ", ".join(str(b) for b in self.moved_bb_ids) or "none"
        status = "met" if self.constraint_met else "NOT met"
        suffix = (
            "" if self.certified
            else " [UNCERTIFIED: deadline expired, best-so-far]"
        )
        return (
            f"{self.workload_name} on {self.platform_name}: "
            f"{self.initial_cycles} -> {self.final_cycles} cycles "
            f"({self.reduction_percent:.1f}% reduction), "
            f"constraint {self.timing_constraint} {status}, "
            f"BBs moved: {moved}{suffix}"
        )
