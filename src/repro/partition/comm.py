"""Communication cost model — the ``t_comm`` term of Eq. 2.

"The time required for communicating data values through the shared data
memory of Figure 1, between the two types of hardware is also taken into
account" (§3).  When a kernel executes on the coarse-grain data-path, its
live-in scalars must be staged into the shared memory by the producer side
and its live-outs retrieved by the consumer side, each burst paying the
interconnect's route-setup overhead.

Array data needs no extra transfer: arrays live in the shared data memory
permanently and both fabrics access them directly (their accesses are
already priced as LOAD/STORE operations in the mapping models).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..platform.interconnect import Interconnect
from ..platform.memory import SharedMemory
from .workload import BlockWorkload


@dataclass(frozen=True)
class CommunicationCost:
    """Per-invocation and total communication cost of one moved kernel."""

    bb_id: int
    words_in: int
    words_out: int
    cycles_per_invocation: int  # FPGA cycles
    invocations: int

    @property
    def total_cycles(self) -> int:
        return self.cycles_per_invocation * self.invocations


def kernel_communication(
    block: BlockWorkload,
    memory: SharedMemory,
    interconnect: Interconnect,
) -> CommunicationCost:
    """Price moving one kernel's boundary data through shared memory."""
    words_in = block.comm_words_in or 0
    words_out = block.comm_words_out or 0
    per_invocation = memory.transfer_cycles(words_in, words_out)
    per_invocation += interconnect.transfer_overhead(words_in)
    per_invocation += interconnect.transfer_overhead(words_out)
    return CommunicationCost(
        bb_id=block.bb_id,
        words_in=words_in,
        words_out=words_out,
        cycles_per_invocation=per_invocation,
        invocations=block.exec_freq,
    )


def total_communication_cycles(costs: list[CommunicationCost]) -> int:
    """Aggregate t_comm over every moved kernel, in FPGA cycles."""
    return sum(cost.total_cycles for cost in costs)
