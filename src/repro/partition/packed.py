"""Packed struct-of-arrays cost tables — the fast pricing substrate.

Eq. 2 of the paper is a sum of independent per-block terms, so once every
kernel is priced, a candidate configuration is nothing but a *bitmask*
over the kernels (bit i set = kernel i moved to the coarse-grain fabric)
and its cost is a handful of integer additions.  The object substrate
(:class:`~repro.partition.costs.CostModel` /
:class:`~repro.partition.costs.CostState`) pays Python object churn per
evaluation — dict lookups, set mutation, dataclass construction; this
module packs the same numbers into flat columns so the search hot loops
run on plain ints:

* :class:`PackedCostTable` — per-kernel ``fpga_ticks`` / ``cgc_ticks`` /
  ``comm_ticks`` / ``move_delta`` / ``cgc_rows`` columns in canonical
  Eq. 1 order, derived **once** from a :class:`CostModel` and
  bit-identical to it (the differential suite is the proof).  The table
  holds only plain tuples of ints, so it pickles in microseconds and the
  explore / suite layers ship one table across every (algorithm ×
  constraint) grid cell of a (workload, platform) pair instead of
  remapping every block per cell.
* Precomputed per-row max tables (``row_masks``): the peak-CGC-rows
  objective of a configuration is ``max`` over its moved kernels, which
  the row masks answer with a couple of integer ANDs — no per-kernel
  walk.
* :class:`PackedCostState` — a mutable (mask, tick totals) pair with
  O(1) ``toggle`` transitions for the annealing / multi-start walks.
* :class:`PackedVisitLog` — the visited-configuration log as two
  parallel columns ``(total_ticks, mask)``, materialized to
  :class:`~repro.search.pareto.VisitedConfiguration` records lazily so
  recording a configuration in a million-subset enumeration costs two
  list appends.
* :class:`PackedGreedyTrajectory` — the constraint-independent Figure 2
  decision sequence computed on the columns, replayed through the exact
  same :func:`~repro.partition.trajectory.replay_entries` semantics as
  the engine, so packed greedy results stay bit-identical.

Timebase and rounding are shared with :class:`CostModel`: everything in
CGC ticks, converted to FPGA cycles by a single largest-remainder
rounding at the boundary.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator, MutableSequence

from .. import telemetry
from ..analysis.weights import WeightModel
from .costs import ceil_ticks_to_cycles, split_ticks_single_rounding
from .trajectory import MOVED, REVERTED, SKIPPED, TrajectoryEntry

if TYPE_CHECKING:  # pragma: no cover - typing-only (avoids re-export)
    from .costs import CostModel

#: The pricing substrates the search layer can run on.
SUBSTRATE_NAMES = ("packed", "object")


class PackedCostTable:
    """Struct-of-arrays Eq. 2 terms for one (workload, platform) pair.

    Kernels are indexed ``0..n-1`` in the canonical Eq. 1 order
    (descending total weight, ascending BB id) — the same order every
    partitioner visits candidates in — and a configuration is an int
    bitmask over those indices.  Unsupported kernels never get an index;
    they live in ``skipped_bb_ids`` (and as ``-1`` entries of
    ``candidates``) so the greedy bookkeeping can interleave them
    exactly like the object substrate does.
    """

    __slots__ = (
        "workload_name",
        "platform_name",
        "clock_ratio",
        "initial_ticks",
        "bb_ids",
        "fpga_ticks",
        "cgc_ticks",
        "comm_ticks",
        "move_delta",
        "cgc_rows",
        "weights",
        "skipped_bb_ids",
        "candidates",
        "row_masks",
        "_index",
    )

    def __init__(
        self,
        *,
        workload_name: str,
        platform_name: str,
        clock_ratio: int,
        initial_ticks: int,
        bb_ids: tuple[int, ...],
        fpga_ticks: tuple[int, ...],
        cgc_ticks: tuple[int, ...],
        comm_ticks: tuple[int, ...],
        move_delta: tuple[int, ...],
        cgc_rows: tuple[int, ...],
        weights: tuple[int, ...],
        skipped_bb_ids: tuple[int, ...],
        candidates: tuple[tuple[int, int], ...],
    ) -> None:
        self.workload_name = workload_name
        self.platform_name = platform_name
        self.clock_ratio = clock_ratio
        #: The all-FPGA Eq. 2 total of the whole workload, in ticks.
        self.initial_ticks = initial_ticks
        self.bb_ids = bb_ids
        self.fpga_ticks = fpga_ticks
        self.cgc_ticks = cgc_ticks
        self.comm_ticks = comm_ticks
        self.move_delta = move_delta
        self.cgc_rows = cgc_rows
        #: Eq. 1 total weight per kernel (multi-start jitters these).
        self.weights = weights
        #: Unsupported kernels, in candidate order.
        self.skipped_bb_ids = skipped_bb_ids
        #: Full Eq. 1 candidate sequence as (bb_id, index | -1).
        self.candidates = candidates
        #: (rows, mask of kernels occupying exactly that many rows),
        #: descending — the per-row max tables behind rows_used().
        distinct: dict[int, int] = {}
        for index, rows in enumerate(cgc_rows):
            distinct[rows] = distinct.get(rows, 0) | (1 << index)
        self.row_masks = tuple(
            (rows, distinct[rows]) for rows in sorted(distinct, reverse=True)
        )
        self._index = {bb_id: i for i, bb_id in enumerate(bb_ids)}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_model(
        cls, model: "CostModel", weight_model: WeightModel | None = None
    ) -> "PackedCostTable":
        """Derive the table from a :class:`CostModel` (prices every
        block once through the model's caches; the columns are the
        model's own :class:`BlockContribution` ints, verbatim)."""
        with telemetry.span("price_table"):
            return cls._from_model(model, weight_model)

    @classmethod
    def _from_model(
        cls, model: "CostModel", weight_model: WeightModel | None = None
    ) -> "PackedCostTable":
        telemetry.count("cost_table_builds")
        weight_model = weight_model or WeightModel()
        bb_ids: list[int] = []
        fpga: list[int] = []
        cgc: list[int] = []
        comm: list[int] = []
        delta: list[int] = []
        rows: list[int] = []
        weights: list[int] = []
        skipped: list[int] = []
        candidates: list[tuple[int, int]] = []
        for kernel in model.kernel_candidates(weight_model):
            contribution = model.contribution(kernel)
            if contribution.supported:
                assert contribution.cgc_ticks is not None
                candidates.append((kernel.bb_id, len(bb_ids)))
                bb_ids.append(kernel.bb_id)
                fpga.append(contribution.fpga_ticks)
                cgc.append(contribution.cgc_ticks)
                comm.append(contribution.comm_ticks)
                delta.append(contribution.move_delta)
                rows.append(contribution.cgc_rows)
                weights.append(kernel.total_weight(weight_model))
            else:
                candidates.append((kernel.bb_id, -1))
                skipped.append(kernel.bb_id)
        return cls(
            workload_name=model.workload.name,
            platform_name=model.platform.name,
            clock_ratio=model.platform.clock_ratio,
            initial_ticks=model.initial_ticks(),
            bb_ids=tuple(bb_ids),
            fpga_ticks=tuple(fpga),
            cgc_ticks=tuple(cgc),
            comm_ticks=tuple(comm),
            move_delta=tuple(delta),
            cgc_rows=tuple(rows),
            weights=tuple(weights),
            skipped_bb_ids=tuple(skipped),
            candidates=tuple(candidates),
        )

    # ------------------------------------------------------------------
    # Pickle / equality (slots classes need explicit support)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict[str, object]:
        return {
            "workload_name": self.workload_name,
            "platform_name": self.platform_name,
            "clock_ratio": self.clock_ratio,
            "initial_ticks": self.initial_ticks,
            "bb_ids": self.bb_ids,
            "fpga_ticks": self.fpga_ticks,
            "cgc_ticks": self.cgc_ticks,
            "comm_ticks": self.comm_ticks,
            "move_delta": self.move_delta,
            "cgc_rows": self.cgc_rows,
            "weights": self.weights,
            "skipped_bb_ids": self.skipped_bb_ids,
            "candidates": self.candidates,
        }

    def __setstate__(self, state: dict[str, object]) -> None:
        self.__init__(**state)  # type: ignore[misc]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PackedCostTable):
            return NotImplemented
        return self.__getstate__() == other.__getstate__()

    def __hash__(self) -> int:  # identity-free: the columns are the table
        return hash((self.workload_name, self.platform_name, self.bb_ids))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.bb_ids)

    def index_of(self, bb_id: int) -> int:
        try:
            return self._index[bb_id]
        except KeyError:
            raise KeyError(f"BB {bb_id} is not a supported kernel") from None

    def mask_of(self, bb_ids: Iterable[int]) -> int:
        """Encode a kernel subset (by BB id) as a bitmask."""
        mask = 0
        for bb_id in bb_ids:
            mask |= 1 << self.index_of(bb_id)
        return mask

    def bb_ids_of(self, mask: int) -> tuple[int, ...]:
        """Decode a bitmask to the sorted BB-id tuple the logs report."""
        bb_ids = self.bb_ids
        return tuple(
            sorted(i_bb for i, i_bb in enumerate(bb_ids) if mask >> i & 1)
        )

    def ticks_of(self, mask: int) -> tuple[int, int, int]:
        """(fpga, cgc, comm) tick totals of a configuration."""
        fpga = self.initial_ticks
        cgc = comm = 0
        for i in range(len(self.bb_ids)):
            if mask >> i & 1:
                fpga -= self.fpga_ticks[i]
                cgc += self.cgc_ticks[i]
                comm += self.comm_ticks[i]
        return fpga, cgc, comm

    def total_ticks_of(self, mask: int) -> int:
        total = self.initial_ticks
        for i in range(len(self.bb_ids)):
            if mask >> i & 1:
                total += self.move_delta[i]
        return total

    def rows_used(self, mask: int) -> int:
        """Peak CGC rows of a configuration via the per-row max tables."""
        for rows, row_mask in self.row_masks:
            if mask & row_mask:
                return rows
        return 0

    def state(self) -> "PackedCostState":
        return PackedCostState(self)

    # ------------------------------------------------------------------
    # Tick -> cycle conversion (identical to CostModel's, by contract)
    # ------------------------------------------------------------------
    def initial_cycles(self) -> int:
        return self.ticks_to_cycles(self.initial_ticks)

    def ticks_to_cycles(self, ticks: int) -> int:
        return ceil_ticks_to_cycles(ticks, self.clock_ratio)

    def split_ticks(
        self, fpga_t: int, cgc_t: int, comm_t: int
    ) -> tuple[int, int, int, int]:
        """(fpga, cgc, comm, total) FPGA cycles, rounded *once* — the
        same :func:`~repro.partition.costs.split_ticks_single_rounding`
        the object substrate uses, by shared code."""
        return split_ticks_single_rounding(
            self.clock_ratio, fpga_t, cgc_t, comm_t
        )


class PackedCostState:
    """One configuration as (mask, running tick totals); O(1) toggles."""

    __slots__ = ("table", "mask", "fpga_ticks", "cgc_ticks", "comm_ticks",
                 "moved_count")

    def __init__(self, table: PackedCostTable) -> None:
        self.table = table
        self.mask = 0
        self.fpga_ticks = table.initial_ticks
        self.cgc_ticks = 0
        self.comm_ticks = 0
        self.moved_count = 0

    def propose(self, index: int) -> int:
        """Tick delta of toggling kernel ``index`` (negative = better)."""
        delta = self.table.move_delta[index]
        return -delta if self.mask >> index & 1 else delta

    def toggle(self, index: int) -> int:
        """Flip kernel ``index`` in or out; returns the applied delta."""
        table = self.table
        bit = 1 << index
        if self.mask & bit:
            self.mask ^= bit
            self.fpga_ticks += table.fpga_ticks[index]
            self.cgc_ticks -= table.cgc_ticks[index]
            self.comm_ticks -= table.comm_ticks[index]
            self.moved_count -= 1
            return -table.move_delta[index]
        self.mask ^= bit
        self.fpga_ticks -= table.fpga_ticks[index]
        self.cgc_ticks += table.cgc_ticks[index]
        self.comm_ticks += table.comm_ticks[index]
        self.moved_count += 1
        return table.move_delta[index]

    @property
    def total_ticks(self) -> int:
        return self.fpga_ticks + self.cgc_ticks + self.comm_ticks

    @property
    def ticks(self) -> tuple[int, int, int]:
        return (self.fpga_ticks, self.cgc_ticks, self.comm_ticks)


class PackedVisitLog:
    """Visited configurations as (total_ticks, mask) columns.

    ``record`` deduplicates by mask (the heuristics revisit subsets);
    ``record_unchecked`` is for enumeration walks that are
    duplicate-free by construction (the Gray-code walk never revisits a
    mask), where a million-entry seen-set would dominate the cost of
    the search itself.  The columns default to plain lists (masks can
    exceed 64 bits on kernel-rich workloads); an enumeration walk whose
    values provably fit may swap them for packed int64 ``array``\\ s.

    Reduced mode (``drop_visits``): 2^32-scale sharded/pruned walks
    cannot afford per-visit columns at all, so the log can instead fold
    every visit straight into the lossless ``(moved, rows) ->
    (min cycles, mask)`` reduction that feeds the Pareto staircase
    sweep — bit-identical fronts and best-config tracking, O(distinct
    shapes) memory, but no per-visit ``entries()`` replay.  The fold
    uses the exact incumbent rule of
    :func:`repro.search.pareto.reduce_columns_to_best` (min cycles,
    ties to the lexicographically smallest BB tuple), so full and
    reduced logs of the same visited set produce identical fronts.
    """

    __slots__ = (
        "ticks",
        "masks",
        "_seen",
        "keep_visits",
        "visit_count",
        "best_by_shape",
        "_table",
        "_decoded",
    )

    def __init__(self) -> None:
        self.ticks: MutableSequence[int] = []
        self.masks: MutableSequence[int] = []
        self._seen: set[int] = set()
        #: False once ``drop_visits`` switched the log to reduced mode.
        self.keep_visits = True
        #: Configurations recorded in reduced mode (columns track their
        #: own length while ``keep_visits`` holds).
        self.visit_count = 0
        #: (moved_count, rows_used) -> (total_cycles, mask), reduced.
        self.best_by_shape: dict[tuple[int, int], tuple[int, int]] = {}
        self._table: "PackedCostTable | None" = None
        self._decoded: dict[int, tuple[int, ...]] = {}

    def __len__(self) -> int:
        if self.keep_visits:
            return len(self.masks)
        return self.visit_count

    # ------------------------------------------------------------------
    # Reduced-mode fold (the reduce_columns_to_best incumbent rule)
    # ------------------------------------------------------------------
    def _bb_tuple(self, mask: int) -> tuple[int, ...]:
        ids = self._decoded.get(mask)
        if ids is None:
            assert self._table is not None
            ids = self._table.bb_ids_of(mask)
            self._decoded[mask] = ids
        return ids

    def _fold_entry(
        self, key: tuple[int, int], cycles: int, mask: int
    ) -> None:
        incumbent = self.best_by_shape.get(key)
        if incumbent is None or cycles < incumbent[0]:
            self.best_by_shape[key] = (cycles, mask)
        elif (
            cycles == incumbent[0]
            and mask != incumbent[1]
            and self._bb_tuple(mask) < self._bb_tuple(incumbent[1])
        ):
            self.best_by_shape[key] = (cycles, mask)

    def _fold(self, total_ticks: int, mask: int) -> None:
        table = self._table
        assert table is not None
        cycles = -(-total_ticks // table.clock_ratio)
        self._fold_entry((mask.bit_count(), table.rows_used(mask)), cycles,
                         mask)

    def drop_visits(self, table: PackedCostTable) -> None:
        """Switch to reduced mode in place, folding any columns already
        recorded (idempotent)."""
        if not self.keep_visits:
            return
        self._table = table
        self.keep_visits = False
        self.visit_count = len(self.masks)
        for total_ticks, mask in zip(self.ticks, self.masks, strict=True):
            self._fold(total_ticks, mask)
        self.ticks = []
        self.masks = []

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(self, total_ticks: int, mask: int) -> None:
        if mask in self._seen:
            return
        self._seen.add(mask)
        if self.keep_visits:
            self.ticks.append(total_ticks)
            self.masks.append(mask)
        else:
            self.visit_count += 1
            self._fold(total_ticks, mask)

    def record_unchecked(self, total_ticks: int, mask: int) -> None:
        if self.keep_visits:
            self.ticks.append(total_ticks)
            self.masks.append(mask)
        else:
            self.visit_count += 1
            self._fold(total_ticks, mask)

    # ------------------------------------------------------------------
    # Shard-summary merges (deterministic: the fold rule is a minimum)
    # ------------------------------------------------------------------
    def absorb_columns(
        self, ticks: Iterable[int], masks: Iterable[int]
    ) -> None:
        """Fold (or append) one shard's duplicate-free visit columns."""
        if self.keep_visits:
            self.ticks.extend(ticks)
            self.masks.extend(masks)
        else:
            count = self.visit_count
            for total_ticks, mask in zip(ticks, masks, strict=True):
                count += 1
                self._fold(total_ticks, mask)
            self.visit_count = count

    def absorb_reduced(
        self,
        visit_count: int,
        best_items: Iterable[tuple[tuple[int, int], tuple[int, int]]],
    ) -> None:
        """Merge one shard's already-reduced ``best_by_shape`` summary."""
        if self.keep_visits:
            raise ValueError(
                "absorb_reduced needs a reduced-mode log; call "
                "drop_visits first"
            )
        self.visit_count += visit_count
        for key, (cycles, mask) in best_items:
            self._fold_entry(key, cycles, mask)

    def entries(self) -> Iterator[tuple[int, int]]:
        if not self.keep_visits:
            raise ValueError(
                "per-visit entries were dropped (reduced mode); only the "
                "Pareto reduction and counts survive keep_visits=False"
            )
        return zip(self.ticks, self.masks, strict=True)


class PackedGreedyTrajectory:
    """The Figure 2 decision sequence computed on packed columns.

    Lazily extended exactly like
    :class:`~repro.partition.trajectory.GreedyTrajectory` — strict
    unsupported-kernel mode must raise only when the replay actually
    reaches the offending kernel, so an early constraint stop behaves
    identically on both substrates.
    """

    def __init__(
        self,
        table: PackedCostTable,
        *,
        skip_unsupported_kernels: bool = True,
        allow_regressing_moves: bool = False,
    ) -> None:
        self.table = table
        self.skip_unsupported_kernels = skip_unsupported_kernels
        self.allow_regressing_moves = allow_regressing_moves
        self.entries: list[TrajectoryEntry] = []
        self._fpga = table.initial_ticks
        self._cgc = 0
        self._comm = 0
        self._mask = 0
        self._next = 0
        #: Mask after each entry (parallel to ``entries``) so replays
        #: can log visited configurations without re-deriving subsets.
        self.masks: list[int] = []

    def _extend(self) -> bool:
        table = self.table
        if self._next >= len(table.candidates):
            return False
        bb_id, index = table.candidates[self._next]
        if index < 0:
            if not self.skip_unsupported_kernels:
                raise ValueError(
                    f"kernel BB {bb_id} cannot execute on the coarse-grain "
                    "data-path"
                )
            action = SKIPPED
        elif table.move_delta[index] > 0 and not self.allow_regressing_moves:
            action = REVERTED
        else:
            action = MOVED
            self._fpga -= table.fpga_ticks[index]
            self._cgc += table.cgc_ticks[index]
            self._comm += table.comm_ticks[index]
            self._mask |= 1 << index
        self._next += 1
        self.entries.append(
            TrajectoryEntry(
                bb_id=bb_id,
                action=action,
                fpga_ticks=self._fpga,
                cgc_ticks=self._cgc,
                comm_ticks=self._comm,
            )
        )
        self.masks.append(self._mask)
        return True

    def iter_entries(self) -> Iterator[TrajectoryEntry]:
        index = 0
        while True:
            while index >= len(self.entries):
                if not self._extend():
                    return
            yield self.entries[index]
            index += 1
