"""Incremental partitioning cost state, factored out of the engine.

Eq. 2 of the paper is a sum of independent per-block terms, so any
hardware/software split is priced by three running totals — FPGA, CGC and
communication ticks — and a kernel move changes them by exactly that
block's contribution.  This module packages that observation as two
reusable pieces:

* :class:`CostModel` — prices blocks on both fabrics (Figure 3 temporal
  partitioning, the CGC list scheduler, the t_comm model) and caches the
  per-block :class:`BlockContribution` terms;
* :class:`CostState` — one candidate configuration (the set of moved
  kernels) with O(1) ``propose`` / ``apply`` / ``revert`` transitions and
  the single-rounding cycle split the result layer reports.

The :class:`~repro.partition.engine.PartitioningEngine` (the paper's
greedy loop) and every :mod:`repro.search` algorithm (exhaustive,
multi-start, annealing) run on this same substrate, which is what makes
thousands of candidate evaluations per second cheap enough for
design-space search.

Timebase: everything is accumulated in CGC ticks
(``1 FPGA cycle = clock_ratio ticks``) so arithmetic stays integral;
conversion to FPGA cycles (the paper's reporting unit) rounds once at the
boundary.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import telemetry
from ..analysis.weights import WeightModel
from ..coarsegrain.timing import CoarseGrainBlockTiming, block_cgc_timing
from ..finegrain.timing import FineGrainBlockTiming, block_fpga_timing
from ..platform.soc import HybridPlatform
from .comm import CommunicationCost, kernel_communication
from .workload import ApplicationWorkload, BlockWorkload


def ceil_ticks_to_cycles(ticks: int, ratio: int) -> int:
    """CGC ticks -> FPGA cycles, rounded up once at the boundary."""
    return -(-ticks // ratio)


def split_ticks_single_rounding(
    ratio: int, fpga_t: int, cgc_t: int, comm_t: int
) -> tuple[int, int, int, int]:
    """(fpga, cgc, comm, total) FPGA cycles, rounded *once*.

    The total is the ceiling of the summed ticks; the three component
    cycle counts are apportioned so they always sum exactly to it
    (largest-remainder rounding), instead of ceiling each term
    independently and drifting from the total.  THE single
    implementation — :class:`CostModel` and
    :class:`~repro.partition.packed.PackedCostTable` both delegate
    here, so the substrates cannot drift on the rounding that every
    reported cycle split depends on.
    """
    total_cycles = ceil_ticks_to_cycles(fpga_t + cgc_t + comm_t, ratio)
    parts = [fpga_t // ratio, cgc_t // ratio, comm_t // ratio]
    remainders = [fpga_t % ratio, cgc_t % ratio, comm_t % ratio]
    leftover = total_cycles - sum(parts)
    for index in sorted(range(3), key=lambda i: (-remainders[i], i))[:leftover]:
        parts[index] += 1
    return parts[0], parts[1], parts[2], total_cycles


@dataclass
class CostStats:
    """Work counters shared by everything pricing blocks on a model.

    Any object with these three attributes works as a sink (the engine
    passes its :class:`~repro.partition.engine.EngineStats`).
    """

    #: Per-block contributions actually *computed* (contribution-cache
    #: misses) — the real Eq. 2-4 pricing work.
    block_cost_evaluations: int = 0
    #: Per-block contribution lookups, hits included (every
    #: :meth:`CostModel.contribution` call) — how often the aggregation
    #: layer consulted the model.
    contribution_lookups: int = 0
    #: Blocks actually mapped onto both fabrics (cache misses).
    blocks_mapped: int = 0


@dataclass
class BlockCosts:
    """Cached per-block mapping results (both fabrics + communication)."""

    fine: FineGrainBlockTiming
    coarse: CoarseGrainBlockTiming | None
    comm: CommunicationCost


@dataclass(frozen=True)
class BlockContribution:
    """One block's additive terms of Eq. 2, in CGC ticks."""

    fpga_ticks: int        # t_FPGA share while the block stays fine-grain
    cgc_ticks: int | None  # t_coarse share if moved (None: unsupported)
    comm_ticks: int        # t_comm share if moved
    #: Peak CGC rows the block's schedule occupies (resource objective of
    #: the multi-objective search; 0 for unsupported blocks).
    cgc_rows: int = 0

    @property
    def supported(self) -> bool:
        return self.cgc_ticks is not None

    @property
    def move_delta(self) -> int:
        """Change of the Eq. 2 total (in ticks) if this block moves."""
        assert self.cgc_ticks is not None
        return self.cgc_ticks + self.comm_ticks - self.fpga_ticks


class CostModel:
    """Prices one workload on one platform; caches per-block terms."""

    def __init__(
        self,
        workload: ApplicationWorkload,
        platform: HybridPlatform,
        *,
        charge_single_partition_reconfig: bool = False,
        stats: CostStats | None = None,
    ) -> None:
        self.workload = workload
        self.platform = platform
        self.charge_single_partition_reconfig = charge_single_partition_reconfig
        self.stats = stats if stats is not None else CostStats()
        self._costs: dict[int, BlockCosts] = {}
        self._contribs: dict[int, BlockContribution] = {}
        self._initial_ticks: int | None = None

    # ------------------------------------------------------------------
    # Per-block mapping (steps 2 and 5 of Figure 2)
    # ------------------------------------------------------------------
    def block_costs(self, block: BlockWorkload) -> BlockCosts:
        cached = self._costs.get(block.bb_id)
        if cached is not None:
            return cached
        self.stats.blocks_mapped += 1
        fine = block_fpga_timing(
            block.dfg,
            self.platform.fpga,
            self.platform.characterization,
            charge_single_partition=self.charge_single_partition_reconfig,
        )
        coarse: CoarseGrainBlockTiming | None = None
        if self.platform.datapath.supports_dfg(block.dfg):
            coarse = block_cgc_timing(block.dfg, self.platform.datapath)
        comm = kernel_communication(
            block, self.platform.memory, self.platform.interconnect
        )
        costs = BlockCosts(fine=fine, coarse=coarse, comm=comm)
        self._costs[block.bb_id] = costs
        return costs

    def contribution(self, block: BlockWorkload) -> BlockContribution:
        """The block's Eq. 2 terms in ticks.

        Every call counts as a ``contribution_lookups``; only cache
        misses — contributions actually computed — count as
        ``block_cost_evaluations``, so cache hits no longer inflate the
        evaluation counter.
        """
        self.stats.contribution_lookups += 1
        cached = self._contribs.get(block.bb_id)
        if cached is not None:
            return cached
        self.stats.block_cost_evaluations += 1
        ratio = self.platform.clock_ratio
        costs = self.block_costs(block)
        contribution = BlockContribution(
            fpga_ticks=costs.fine.total_cycles * block.exec_freq * ratio,
            cgc_ticks=(
                costs.coarse.cgc_cycles * block.exec_freq
                if costs.coarse is not None
                else None
            ),
            comm_ticks=costs.comm.total_cycles * ratio,
            cgc_rows=costs.coarse.rows_used if costs.coarse is not None else 0,
        )
        self._contribs[block.bb_id] = contribution
        return contribution

    def contribution_by_id(self, bb_id: int) -> BlockContribution:
        return self.contribution(self.workload.block(bb_id))

    # ------------------------------------------------------------------
    # Workload-level queries
    # ------------------------------------------------------------------
    def initial_ticks(self) -> int:
        """The all-FPGA Eq. 2 total, cached after the first computation."""
        if self._initial_ticks is None:
            # The first all-FPGA pricing pass walks (and caches) every
            # block's contribution — the expensive part of deriving a
            # table, hence its own nested phase.
            with telemetry.span("price_blocks"):
                self._initial_ticks = sum(
                    self.contribution(block).fpga_ticks
                    for block in self.workload.blocks
                )
        return self._initial_ticks

    def initial_cycles(self) -> int:
        return self.ticks_to_cycles(self.initial_ticks())

    def kernel_candidates(
        self, weight_model: WeightModel | None = None
    ) -> list[BlockWorkload]:
        """Candidates in the Eq. 1 greedy order (descending total weight)."""
        return self.workload.kernel_candidates(weight_model or WeightModel())

    # ------------------------------------------------------------------
    # Tick -> cycle conversion
    # ------------------------------------------------------------------
    def ticks_to_cycles(self, ticks: int) -> int:
        return ceil_ticks_to_cycles(ticks, self.platform.clock_ratio)

    def split_ticks(
        self, fpga_t: int, cgc_t: int, comm_t: int
    ) -> tuple[int, int, int, int]:
        """(fpga, cgc, comm, total) FPGA cycles, rounded *once*
        (:func:`split_ticks_single_rounding`)."""
        return split_ticks_single_rounding(
            self.platform.clock_ratio, fpga_t, cgc_t, comm_t
        )


class CostState:
    """One hardware/software split with O(1) move transitions.

    The state is the set of moved kernels plus the three running Eq. 2
    tick totals.  ``propose_move`` prices a transition without taking it;
    ``apply_move`` / ``revert_move`` take and undo it in O(1).
    """

    def __init__(self, model: CostModel) -> None:
        self.model = model
        self.fpga_ticks = model.initial_ticks()
        self.cgc_ticks = 0
        self.comm_ticks = 0
        self.moved: set[int] = set()
        # Multiset of the moved kernels' row footprints plus the running
        # max, so cgc_rows_used() is O(1) instead of O(moved) per call.
        self._row_counts: dict[int, int] = {}
        self._rows_used = 0

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------
    def propose_move(self, bb_id: int) -> int:
        """Tick delta of toggling ``bb_id`` (negative = improvement)."""
        contribution = self.model.contribution_by_id(bb_id)
        if bb_id in self.moved:
            return -contribution.move_delta
        return contribution.move_delta

    def apply_move(self, bb_id: int) -> int:
        """Move ``bb_id`` to the coarse-grain fabric; returns the delta."""
        if bb_id in self.moved:
            raise ValueError(f"BB {bb_id} is already moved")
        contribution = self.model.contribution_by_id(bb_id)
        if not contribution.supported:
            raise ValueError(
                f"kernel BB {bb_id} cannot execute on the coarse-grain "
                "data-path"
            )
        assert contribution.cgc_ticks is not None
        self.fpga_ticks -= contribution.fpga_ticks
        self.cgc_ticks += contribution.cgc_ticks
        self.comm_ticks += contribution.comm_ticks
        self.moved.add(bb_id)
        rows = contribution.cgc_rows
        self._row_counts[rows] = self._row_counts.get(rows, 0) + 1
        if rows > self._rows_used:
            self._rows_used = rows
        return contribution.move_delta

    def revert_move(self, bb_id: int) -> int:
        """Undo a previous :meth:`apply_move`; returns the delta."""
        if bb_id not in self.moved:
            raise ValueError(f"BB {bb_id} is not moved")
        contribution = self.model.contribution_by_id(bb_id)
        assert contribution.cgc_ticks is not None
        self.fpga_ticks += contribution.fpga_ticks
        self.cgc_ticks -= contribution.cgc_ticks
        self.comm_ticks -= contribution.comm_ticks
        self.moved.discard(bb_id)
        rows = contribution.cgc_rows
        remaining = self._row_counts[rows] - 1
        if remaining:
            self._row_counts[rows] = remaining
        else:
            del self._row_counts[rows]
            if rows == self._rows_used:
                self._rows_used = max(self._row_counts, default=0)
        return -contribution.move_delta

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def total_ticks(self) -> int:
        return self.fpga_ticks + self.cgc_ticks + self.comm_ticks

    @property
    def ticks(self) -> tuple[int, int, int]:
        return (self.fpga_ticks, self.cgc_ticks, self.comm_ticks)

    def total_cycles(self) -> int:
        return self.model.ticks_to_cycles(self.total_ticks)

    def split_cycles(self) -> tuple[int, int, int, int]:
        """(fpga, cgc, comm, total) FPGA cycles of this configuration."""
        return self.model.split_ticks(*self.ticks)

    def cgc_rows_used(self) -> int:
        """Peak CGC rows any moved kernel's schedule occupies.

        Kernels run sequentially (the program has one thread of control),
        so the configuration's row footprint is the max, not the sum —
        maintained incrementally by apply/revert, so this is O(1).
        """
        return self._rows_used
