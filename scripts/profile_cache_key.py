"""Emit a stable cache key for the on-disk profile cache.

CI restores ``REPRO_PROFILE_CACHE_DIR`` via ``actions/cache`` keyed on
this script's output: the content fingerprints of every measured
workload's CDFG.  Any semantic change to a measured program (OFDM
transmitter, JPEG encoder) changes its fingerprint, rotates the key,
and starts a fresh cache — while docs-only or unrelated commits keep
hitting the warm one.  The same property the cache itself relies on
(profiles are keyed by CDFG fingerprint) makes the key safe: a stale
restore can never poison a run, so the key only tunes hit rate.

Usage::

    python scripts/profile_cache_key.py > profile-cache.key
"""

from repro.explore import WorkloadSpec
from repro.interp.compiler import cdfg_fingerprint


def main() -> None:
    for spec in (
        WorkloadSpec.ofdm_measured(),
        WorkloadSpec.jpeg_measured(),
    ):
        print(f"{spec.label} {cdfg_fingerprint(spec.cdfg())}")


if __name__ == "__main__":
    main()
