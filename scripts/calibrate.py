"""Calibration/verification utility: print our Tables 2/3 vs the paper's.

This is the maintained remnant of the one-off calibration searches used to
freeze the workload shape parameters (see DESIGN.md, "Calibration
protocol").  Run it after touching the timing models or workload shapes:

    python scripts/calibrate.py
"""

from repro.reporting import (
    render_partition_table,
    render_table1,
    reproduce_headline_claims,
    reproduce_table1_jpeg,
    reproduce_table1_ofdm,
    reproduce_table2,
    reproduce_table3,
)


def main() -> None:
    print(render_table1(reproduce_table1_ofdm(), "Table 1 — OFDM"))
    print()
    print(render_table1(reproduce_table1_jpeg(), "Table 1 — JPEG"))
    print()
    table2 = reproduce_table2()
    print(render_partition_table(table2))
    print()
    table3 = reproduce_table3()
    print(render_partition_table(table3))
    print()
    claims = reproduce_headline_claims(table2, table3)
    print(
        f"headline: OFDM max reduction {claims.ofdm_max_reduction:.1f}% "
        f"(paper {claims.PAPER_OFDM_MAX}), JPEG "
        f"{claims.jpeg_max_reduction:.1f}% (paper {claims.PAPER_JPEG_MAX}); "
        f"area trends hold: {claims.ofdm_area_trend_holds}/"
        f"{claims.jpeg_area_trend_holds}"
    )


if __name__ == "__main__":
    main()
