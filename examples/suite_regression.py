"""Walkthrough: the scenario suite, its result store, and the gate.

The workflow every future change plugs into:

1. run a named subset of the suite and persist it into an SQLite store
   (plus a baseline-format JSON export);
2. re-run and diff against the stored baseline — identical code, no
   regressions;
3. simulate a bad change by doctoring one scenario's cycles and watch
   the 20% gate catch it;
4. print the Pareto reports for the two new kernel-rich workloads.

The CLI equivalent of steps 1-2 (what CI runs) is::

    python -m repro suite run --db results.sqlite --label baseline
    python -m repro suite compare \\
        --baseline benchmarks/suite_baseline.json --cycle-threshold 20
"""

import dataclasses
import tempfile
from pathlib import Path

from repro.reporting import render_pareto, render_suite, render_suite_diff
from repro.search import make_partitioner
from repro.suite import (
    RegressionThresholds,
    ResultStore,
    compare_runs,
    get_scenario,
    run_suite,
    select_scenarios,
)

SCENARIOS = [
    "ofdm-greedy",
    "filterbank-greedy",
    "viterbi-greedy",
    "synth-skewed",
]


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        db_path = Path(tmp) / "results.sqlite"

        # 1. Run and persist a baseline.
        print("=== suite run (baseline) ===")
        with ResultStore(db_path) as store:
            baseline = run_suite(
                select_scenarios(SCENARIOS),
                store=store,
                label="baseline",
                max_workers=1,
            )
        print(render_suite(baseline))

        # 2. Re-run and compare: deterministic cycles, no regressions.
        print("\n=== suite compare (same code) ===")
        candidate = run_suite(select_scenarios(SCENARIOS), max_workers=1)
        comparison = compare_runs(
            baseline, candidate, RegressionThresholds(cycle_percent=20.0)
        )
        print(render_suite_diff(comparison))
        assert not comparison.has_regressions

        # 3. A "bad change": one scenario suddenly costs 2x the cycles.
        print("\n=== suite compare (injected 2x regression) ===")
        doctored = dataclasses.replace(
            candidate,
            results=[
                dataclasses.replace(
                    r, total_cycles=r.total_cycles * 2
                )
                if r.scenario == "filterbank-greedy"
                else r
                for r in candidate.results
            ],
        )
        gated = compare_runs(
            baseline, doctored, RegressionThresholds(cycle_percent=20.0)
        )
        print(render_suite_diff(gated))
        assert gated.has_regressions

        # The store kept both recorded runs' history.
        with ResultStore(db_path) as store:
            history = store.scenario_history("filterbank-greedy")
        print(f"\nstore history for filterbank-greedy: {len(history)} run(s)")

    # 4. Pareto reports for the two new workloads.
    for name in ("filterbank-greedy", "viterbi-greedy"):
        scenario = get_scenario(name)
        workload = scenario.workload.build()
        partitioner = make_partitioner(
            scenario.algorithm, workload, scenario.platform.build()
        )
        # Tight constraint: walk the full cycles/moves trade-off curve.
        partitioner.run(max(1, round(partitioner.initial_cycles() * 0.05)))
        print(f"\n=== Pareto front: {workload.name} ===")
        print(render_pareto(partitioner.pareto_front()))


if __name__ == "__main__":
    main()
