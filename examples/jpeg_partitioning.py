"""JPEG encoder partitioning — reproduces the paper's Tables 1 and 3.

Part 1 regenerates Table 3 from the calibrated workload; part 2 compiles
the real mini-C JPEG encoder (DCT -> quantize -> zig-zag -> entropy),
encodes a test frame, profiles it and partitions the result.

Run:  python examples/jpeg_partitioning.py
"""

from repro import PartitioningEngine, paper_platform, workload_from_cdfg
from repro.reporting import (
    render_partition_table,
    render_table1,
    reproduce_table1_jpeg,
    reproduce_table3,
)
from repro.workloads import JPEGEncoderApp, test_image


def reproduce_paper_tables() -> None:
    print("=" * 72)
    print("Part 1: calibrated Table 1/Table 3 reproduction")
    print("=" * 72)
    print(render_table1(reproduce_table1_jpeg(), "Table 1 (JPEG, top 8 kernels)"))
    print()
    print(render_partition_table(reproduce_table3()))
    print()


def partition_real_encoder() -> None:
    print("=" * 72)
    print("Part 2: the mini-C JPEG encoder through the full flow")
    print("=" * 72)
    app = JPEGEncoderApp()
    print(f"compiled {app.cdfg.block_count} basic blocks from mini-C source")

    image = test_image()
    encoded = app.encode_image(image)
    print(f"encoded a {image.shape[0]}x{image.shape[1]} frame into "
          f"{encoded.total_bits} bits "
          f"({encoded.steps} interpreted operations)")

    profile = app.profile_image(image)
    workload = workload_from_cdfg(app.cdfg, profile, "jpeg-minic")
    platform = paper_platform(1500, 2)
    engine = PartitioningEngine(workload, platform)
    initial = engine.initial_cycles()
    result = engine.run(int(initial * 0.97))

    print(f"all-FPGA: {initial} cycles; after partitioning: "
          f"{result.final_cycles} cycles "
          f"({result.reduction_percent:.1f}% reduction)")
    print("kernels moved to the CGC data-path:")
    for bb_id in result.moved_bb_ids[:6]:
        key = app.cdfg.key_for_id(bb_id)
        print(f"  BB {bb_id}: {key.function}/{key.label} "
              f"(executed {profile.exec_freq(bb_id)} times)")
    print()
    print("note on granularity: this rolled-loop encoder has tiny basic")
    print("blocks (the DCT inner loop body weighs ~3), so per-invocation")
    print("shared-memory transfers cap the achievable gain.  The paper's")
    print("JPEG reaches blocks of weight 85 (Table 1) — its source was")
    print("unrolled/fused so each block holds a whole DCT pass, which is")
    print("exactly what the calibrated Table 1 workload models (and why")
    print("Table 3 shows 43% there).  Kernel granularity, not the engine,")
    print("is the limiting factor here.")


if __name__ == "__main__":
    reproduce_paper_tables()
    partition_real_encoder()
