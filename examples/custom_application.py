"""Bring your own C code: the full Figure 2 flow on a custom application.

Shows every stage explicitly on a 2-D convolution kernel written in the
mini-C subset: parse -> semantic check -> CDFG -> interpret/profile ->
static analysis -> kernel ordering -> fine/coarse-grain mapping ->
partitioning engine.

Run:  python examples/custom_application.py
"""

from repro import (
    PartitioningEngine,
    WeightModel,
    cdfg_from_source,
    extract_kernels,
    paper_platform,
    profile_cdfg,
    workload_from_cdfg,
)
from repro.coarsegrain import block_cgc_timing
from repro.finegrain import block_fpga_timing

CONV_SOURCE = """
// 3x3 convolution over a 16x16 frame (edge rows/cols skipped).
const int K[9] = {1, 2, 1, 2, 4, 2, 1, 2, 1};

void conv3x3(int src[256], int dst[256]) {
    for (int y = 1; y < 15; y++) {
        for (int x = 1; x < 15; x++) {
            int acc = 0;
            for (int ky = 0; ky < 3; ky++) {
                for (int kx = 0; kx < 3; kx++) {
                    int pixel = src[(y + ky - 1) * 16 + (x + kx - 1)];
                    acc += pixel * K[3 * ky + kx];
                }
            }
            dst[y * 16 + x] = acc >> 4;
        }
    }
}
"""


def main() -> None:
    # Step 1: CDFG creation (parse, check, lower, number blocks).
    cdfg = cdfg_from_source(CONV_SOURCE, "conv.c")
    print(f"step 1 — CDFG: {cdfg.block_count} basic blocks")

    # Step 3a: dynamic analysis (interpret with a representative input).
    frame = [(x * 7 + 13) % 256 for x in range(256)]
    profile = profile_cdfg(cdfg, "conv3x3", frame, [0] * 256)
    print(f"step 3 — profile: hottest blocks {profile.hottest(3)}")

    # Step 3b: static analysis + kernel ordering (Eq. 1).
    analysis = extract_kernels(cdfg, profile, WeightModel())
    print("         kernel ordering (BB, freq, weight, total):")
    for kernel in analysis.kernels[:4]:
        print(f"           {kernel.table_row()}")

    # Steps 2/5: per-kernel mapping costs on both fabrics.
    platform = paper_platform(1500, 2)
    top = analysis.kernels[0]
    dfg = cdfg.dfg_by_id(top.bb_id)
    fine = block_fpga_timing(dfg, platform.fpga, platform.characterization)
    coarse = block_cgc_timing(dfg, platform.datapath)
    print(
        f"steps 2/5 — hottest kernel BB {top.bb_id}: "
        f"FPGA {fine.total_cycles} cycles/invocation "
        f"({fine.partition_count} temporal partition(s)); "
        f"CGC {coarse.cgc_cycles} CGC-cycles/invocation"
    )

    # Step 4: the partitioning engine against a timing constraint.
    workload = workload_from_cdfg(cdfg, profile, "conv3x3")
    engine = PartitioningEngine(workload, platform)
    initial = engine.initial_cycles()
    result = engine.run(int(initial * 0.55))
    print(f"step 4 — {result.summary()}")


if __name__ == "__main__":
    main()
