"""Quickstart: partition a small application between the FPGA and the CGCs.

Builds a three-block workload by hand, instantiates one of the paper's
platform configurations (A_FPGA = 1500 area units, two 2x2 CGCs,
T_FPGA = 3*T_CGC) and runs the Figure 2 partitioning loop against a timing
constraint.

Run:  python examples/quickstart.py
"""

from repro import PartitioningEngine, paper_platform
from repro.partition import ApplicationWorkload, BlockWorkload
from repro.workloads import generate_dfg, make_profile


def build_workload() -> ApplicationWorkload:
    """Three synthetic basic blocks: one hot MAC kernel and two light ones.

    ``make_profile`` fixes each block's analysis weight exactly
    (weight = ALU ops + 2 x MUL ops, the paper's model) and shapes the DFG
    (parallelism width, memory traffic).
    """
    blocks = []
    for bb_id, freq, weight, width in [
        (1, 2000, 60, 3.0),   # hot kernel: 2000 invocations, weight 60
        (2, 400, 18, 2.0),
        (3, 100, 9, 2.0),
    ]:
        profile = make_profile(
            bb_id, freq, weight, mul_fraction=0.4, width=width, mem_factor=0.5
        )
        blocks.append(
            BlockWorkload(
                bb_id=bb_id,
                exec_freq=freq,
                dfg=generate_dfg(profile),
                comm_words_in=profile.live_in_words,
                comm_words_out=profile.live_out_words,
                name=f"kernel{bb_id}",
            )
        )
    return ApplicationWorkload(name="quickstart", blocks=blocks)


def main() -> None:
    workload = build_workload()
    platform = paper_platform(afpga=1500, cgc_count=2)
    print(f"platform: {platform.describe()}")

    engine = PartitioningEngine(workload, platform)
    initial = engine.initial_cycles()
    print(f"all-FPGA execution time: {initial} cycles")

    constraint = int(initial * 0.4)
    print(f"timing constraint:       {constraint} cycles")
    result = engine.run(constraint)

    print()
    print(result.summary())
    print()
    print("step-by-step (Figure 2 loop):")
    for step in result.steps:
        status = "met" if step.constraint_met else "not met"
        print(
            f"  moved BB {step.moved_bb_id}: total={step.total_cycles} "
            f"(fpga={step.fpga_cycles}, cgc={step.cgc_fpga_cycles}, "
            f"comm={step.comm_cycles}) -> constraint {status}"
        )


if __name__ == "__main__":
    main()
