"""OFDM transmitter partitioning — reproduces the paper's Tables 1 and 2.

Two parts:

1. The calibrated workload (exact Table 1 statistics) through the
   partitioning engine on all four platform configurations of §4 —
   regenerating Table 2's rows.
2. The *real* mini-C OFDM transmitter (QAM -> IFFT64 -> cyclic prefix)
   compiled, interpreted, profiled and partitioned end to end, showing the
   flow on genuine source code.

Run:  python examples/ofdm_partitioning.py
"""

from repro import PartitioningEngine, paper_platform, workload_from_cdfg
from repro.reporting import (
    render_partition_table,
    render_table1,
    reproduce_table1_ofdm,
    reproduce_table2,
)
from repro.workloads import BITS_PER_SYMBOL, OFDMTransmitterApp, random_bits


def reproduce_paper_tables() -> None:
    print("=" * 72)
    print("Part 1: calibrated Table 1/Table 2 reproduction")
    print("=" * 72)
    print(render_table1(reproduce_table1_ofdm(), "Table 1 (OFDM, top 8 kernels)"))
    print()
    print(render_partition_table(reproduce_table2()))
    print()


def partition_real_transmitter() -> None:
    print("=" * 72)
    print("Part 2: the mini-C 802.11a transmitter through the full flow")
    print("=" * 72)
    app = OFDMTransmitterApp()
    print(f"compiled {app.cdfg.block_count} basic blocks from mini-C source")

    # Dynamic analysis over 6 payload symbols, like the paper's experiment.
    symbols = [random_bits(BITS_PER_SYMBOL, seed=s) for s in range(6)]
    profile = app.profile_symbols(symbols)
    workload = workload_from_cdfg(app.cdfg, profile, "ofdm-minic")

    platform = paper_platform(1500, 2)
    engine = PartitioningEngine(workload, platform)
    initial = engine.initial_cycles()
    result = engine.run(int(initial * 0.5))

    print(f"all-FPGA: {initial} cycles; after partitioning: "
          f"{result.final_cycles} cycles "
          f"({result.reduction_percent:.1f}% reduction)")
    print("kernels moved to the CGC data-path:")
    for bb_id in result.moved_bb_ids:
        key = app.cdfg.key_for_id(bb_id)
        freq = profile.exec_freq(bb_id)
        print(f"  BB {bb_id}: {key.function}/{key.label} "
              f"(executed {freq} times)")


if __name__ == "__main__":
    reproduce_paper_tables()
    partition_real_transmitter()
