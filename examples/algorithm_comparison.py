"""Comparing partitioning algorithms head-to-head.

The paper's Figure 2 flow is one specific search strategy — greedy by
Eq. 1 weight.  :mod:`repro.search` makes the strategy pluggable: this
example runs all four registered algorithms (greedy, exhaustive,
multi-start, simulated annealing) on the OFDM transmitter and on a
skewed synthetic workload under a kernel-move budget, prints the
head-to-head table, and renders the combined Pareto front of
(total cycles, kernels moved, CGC rows) — the multi-objective view a
single greedy answer hides.

Run:  PYTHONPATH=src python examples/algorithm_comparison.py
"""

import tempfile
from pathlib import Path

from repro.partition import (
    ApplicationWorkload,
    BlockWorkload,
    EngineConfig,
)
from repro.platform import paper_platform
from repro.reporting import render_pareto, write_pareto_csv
from repro.reporting.tables import format_grid
from repro.search import AlgorithmSpec, front_of_results, make_partitioner
from repro.workloads import generate_dfg, make_profile, ofdm_workload

#: All four algorithms — exhaustive is reserved for small candidate
#: counts (2^n subsets), so the OFDM scenario runs the heuristics only.
ALL_SPECS = (
    AlgorithmSpec.greedy(),
    AlgorithmSpec.exhaustive(),
    AlgorithmSpec.multi_start(restarts=16),
    AlgorithmSpec.annealing(seed=1),
)
HEURISTIC_SPECS = tuple(s for s in ALL_SPECS if s.name != "exhaustive")


def skewed_workload() -> ApplicationWorkload:
    """The greedy trap: the heaviest kernel (BB 1, Eq. 1 weight 60000)
    saves almost nothing because its 55-word live sets make communication
    eat the FPGA time it frees, while two lighter kernels each save an
    order of magnitude more."""

    def block(bb_id, freq, weight, **kwargs):
        profile = make_profile(bb_id, freq, weight, **kwargs)
        return BlockWorkload(
            bb_id=bb_id,
            exec_freq=freq,
            dfg=generate_dfg(profile),
            comm_words_in=profile.live_in_words,
            comm_words_out=profile.live_out_words,
        )

    return ApplicationWorkload(
        name="skewed",
        blocks=[
            block(1, 3000, 20, width=1.0, live=(55, 55)),
            block(2, 900, 50, mul_fraction=0.5, live=(2, 1)),
            block(3, 800, 48, mul_fraction=0.5, live=(2, 1)),
            block(4, 50, 6),
        ],
    )


def compare(workload, platform, specs, *, move_budget=None, fraction=0.5):
    """Run every algorithm on one scenario; returns (rows, fronts)."""
    rows = []
    fronts = []
    for spec in specs:
        partitioner = make_partitioner(
            spec,
            workload,
            platform,
            config=EngineConfig(
                stop_at_constraint=False, max_kernels_moved=move_budget
            ),
        )
        constraint = max(
            1, round(partitioner.initial_cycles() * fraction)
        )
        result = partitioner.run(constraint)
        fronts.append(partitioner.pareto_front())
        rows.append(
            [
                spec.label,
                str(result.final_cycles),
                f"{result.reduction_percent:.1f}",
                str(result.kernels_moved),
                str(partitioner.visited_count),
                "yes" if result.constraint_met else "no",
            ]
        )
    return rows, fronts


def main() -> None:
    headers = ["algorithm", "final", "red %", "moved", "visited", "met"]

    print("=== OFDM transmitter, A_FPGA=1500, 2 CGCs, C = 0.5 x initial ===")
    rows, __ = compare(
        ofdm_workload(), paper_platform(1500, 2), HEURISTIC_SPECS
    )
    print(format_grid(headers, rows))

    print(
        "\n=== Skewed synthetic workload, 2-kernel move budget ===\n"
        "(the heaviest kernel saves the least: weight-order greedy wastes "
        "a budget slot)"
    )
    rows, fronts = compare(
        skewed_workload(), paper_platform(1500, 2), ALL_SPECS, move_budget=2
    )
    print(format_grid(headers, rows))

    combined = front_of_results(fronts)
    print("\nCombined Pareto front (cycles vs kernels moved vs CGC rows):")
    print(render_pareto(combined))

    out = Path(tempfile.mkdtemp(prefix="search-")) / "pareto.csv"
    write_pareto_csv(combined, out)
    print(f"\nwrote {out}")


if __name__ == "__main__":
    main()
