"""Design-space exploration: parallel grid sweeps around the paper's points.

The methodology is "parameterized with respect to the reconfigurable
hardware" (§1), so any (A_FPGA, CGC count, clock ratio) point defines a
platform.  This example declares a (workload × platform × constraint)
grid with :class:`repro.explore.DesignSpace`, fans it out across worker
processes with :func:`repro.explore.explore`, and then asks the classic
DSE questions: which points meet the deadline, and what is the smallest
platform that does?

The grid mixes the paper's OFDM transmitter with a 60-block synthetic
application (see :func:`repro.workloads.synthetic_application`) to show
the same sweep scaling beyond the paper's 22-block ceiling.  Results are
also exported as CSV and JSON via :mod:`repro.reporting`.

Run:  PYTHONPATH=src python examples/design_space_exploration.py
"""

import tempfile
from pathlib import Path

from repro.explore import DesignSpace, WorkloadSpec, explore
from repro.reporting import (
    render_exploration,
    write_exploration_csv,
    write_exploration_json,
)

CONSTRAINT_FRACTIONS = (0.9, 0.75, 0.5)


def main() -> None:
    space = DesignSpace.grid(
        [
            WorkloadSpec.ofdm(),
            WorkloadSpec.synthetic(60, seed=11, comm_intensity=0.5),
        ],
        afpga_values=(800, 1500, 3000, 5000),
        cgc_counts=(1, 2, 3),
        constraint_fractions=CONSTRAINT_FRACTIONS,
    )
    print(
        f"exploring {space.size} grid points "
        f"({len(space.workloads)} workloads x {len(space.platforms)} "
        f"platforms x {len(space.constraint_fractions)} constraints)\n"
    )

    report = explore(space, max_workers=4)
    print(render_exploration(report))

    print("\nSmallest platform meeting each deadline:")
    for workload in report.workload_names():
        for fraction in CONSTRAINT_FRACTIONS:
            cheapest = report.cheapest_meeting(workload, fraction)
            if cheapest is None:
                print(f"  {workload} @ {fraction:.2f}: no point meets it")
            else:
                print(
                    f"  {workload} @ {fraction:.2f}: A_FPGA="
                    f"{cheapest.afpga}, {cheapest.cgc_count} CGCs "
                    f"({cheapest.kernels_moved} kernels moved, "
                    f"{cheapest.reduction_percent:.1f}% reduction)"
                )

    out_dir = Path(tempfile.mkdtemp(prefix="explore-"))
    csv_path = write_exploration_csv(report.results, out_dir / "grid.csv")
    json_path = write_exploration_json(report, out_dir / "grid.json")
    print(f"\nwrote {csv_path} and {json_path}")


if __name__ == "__main__":
    main()
