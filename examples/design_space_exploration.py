"""Design-space exploration: sweep the platform around the paper's points.

The methodology is "parameterized with respect to the reconfigurable
hardware" (§1), so any (A_FPGA, CGC count, reconfiguration cost, clock
ratio) point defines a platform.  This example sweeps the OFDM workload
across a grid and prints where the timing constraint becomes satisfiable
and how many kernels each point needs to move.

Run:  python examples/design_space_exploration.py
"""

from repro import PartitioningEngine, paper_platform
from repro.reporting import scaled_constraint
from repro.reporting.tables import format_grid
from repro.workloads import (
    OFDM_TIMING_CONSTRAINT,
    PAPER_TABLE2_OFDM,
    ofdm_workload,
)


def sweep_area_and_cgcs(workload, constraint) -> None:
    print("A_FPGA x CGC-count sweep (OFDM, fixed relative constraint)")
    headers = ["A_FPGA", "CGCs", "initial", "final", "moved", "red %", "met"]
    rows = []
    for afpga in (800, 1500, 3000, 5000, 8000):
        for cgc_count in (1, 2, 3, 4):
            engine = PartitioningEngine(
                workload, paper_platform(afpga, cgc_count)
            )
            result = engine.run(constraint)
            rows.append(
                [
                    str(afpga),
                    str(cgc_count),
                    str(result.initial_cycles),
                    str(result.final_cycles),
                    str(result.kernels_moved),
                    f"{result.reduction_percent:.1f}",
                    "yes" if result.constraint_met else "no",
                ]
            )
    print(format_grid(headers, rows))
    print()


def sweep_reconfiguration_cost(workload, constraint) -> None:
    print("Reconfiguration-cost sensitivity (A_FPGA=1500, two 2x2 CGCs)")
    headers = ["reconfig cycles", "initial", "final", "red %"]
    rows = []
    for reconfig in (0, 10, 20, 40, 80, 160):
        platform = paper_platform(1500, 2, reconfig_cycles=reconfig)
        engine = PartitioningEngine(workload, platform)
        result = engine.run(constraint)
        rows.append(
            [
                str(reconfig),
                str(result.initial_cycles),
                str(result.final_cycles),
                f"{result.reduction_percent:.1f}",
            ]
        )
    print(format_grid(headers, rows))
    print()


def sweep_clock_ratio(workload, constraint) -> None:
    print("T_FPGA / T_CGC ratio sensitivity (A_FPGA=1500, two 2x2 CGCs)")
    headers = ["clock ratio", "final", "cycles in CGC", "red %"]
    rows = []
    for ratio in (1, 2, 3, 4, 6):
        platform = paper_platform(1500, 2, clock_ratio=ratio)
        engine = PartitioningEngine(workload, platform)
        result = engine.run(constraint)
        rows.append(
            [
                str(ratio),
                str(result.final_cycles),
                str(result.cycles_in_cgc),
                f"{result.reduction_percent:.1f}",
            ]
        )
    print(format_grid(headers, rows))


def main() -> None:
    workload = ofdm_workload()
    constraint, scale = scaled_constraint(
        workload, PAPER_TABLE2_OFDM, OFDM_TIMING_CONSTRAINT
    )
    print(
        f"constraint: {constraint} cycles "
        f"(paper's {OFDM_TIMING_CONSTRAINT} scaled by {scale:.3f})\n"
    )
    sweep_area_and_cgcs(workload, constraint)
    sweep_reconfiguration_cost(workload, constraint)
    sweep_clock_ratio(workload, constraint)


if __name__ == "__main__":
    main()
